"""Ablation: IAT quantisation resolution of the bucket heuristic.

The paper matches inter-arrival times exactly; our implementation
quantises them into bins (default 0.25 s, ±1 neighbour bin).  Sweeping
the resolution over two orders of magnitude shows the heuristic is
*insensitive* to the choice — a finding worth documenting: bucket
identity already includes the exact packet size, so unpredictable
traffic (near-unique sizes → 1-2 packets per bucket) can never
accumulate repeated IATs no matter how coarse the bins, while periodic
flows produce so many samples per bucket that repeats survive even
needlessly fine bins.  The resolution only matters at the margins
(drifting timers whose sizes repeat, like the Nest's wakeups).
"""

from repro.net import FlowDefinition, TrafficClass
from repro.predictability import analyze_trace

from benchmarks._helpers import print_table


def test_ablation_iat_resolution(benchmark, testbed_household):
    trace = testbed_household.trace
    dns = testbed_household.cloud.dns

    def measure(resolution):
        report = analyze_trace(trace, FlowDefinition.PORTLESS, dns=dns,
                               resolution=resolution)
        control = []
        manual = []
        nest = report.devices["Nest-E"].class_fraction(TrafficClass.CONTROL)
        for entry in report.devices.values():
            c = entry.class_fraction(TrafficClass.CONTROL)
            m = entry.class_fraction(TrafficClass.MANUAL)
            if c is not None:
                control.append(c)
            if m is not None:
                manual.append(m)
        return (
            sum(control) / len(control),
            sum(manual) / len(manual) if manual else 0.0,
            nest,
        )

    benchmark.pedantic(lambda: measure(0.25), rounds=1, iterations=1)

    rows = []
    results = {}
    for resolution in (0.01, 0.05, 0.25, 1.0, 5.0):
        control, manual, nest = measure(resolution)
        results[resolution] = (control, manual, nest)
        rows.append(
            (f"{resolution:.2f}s", f"{control:.3f}", f"{manual:.3f}", f"{nest:.3f}")
        )
    print_table(
        "Ablation — IAT quantisation resolution (default 0.25 s): the "
        "heuristic is size-dominated and robust to the bin width",
        ("resolution", "control predictable", "manual 'predictable'", "Nest-E control"),
        rows,
    )

    # Robustness: control stays ~0.98 and manual stays low across the
    # full sweep — the design choice is not load-bearing.
    for control, manual, _ in results.values():
        assert control > 0.95
        assert manual < 0.5
    # The coarsest bins may only ever *increase* apparent predictability
    # (more matches), never decrease it.
    assert results[5.0][0] >= results[0.01][0] - 1e-9
    assert results[5.0][2] >= results[0.25][2] - 1e-9
