"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ReplayCache, SecureKeystore
from repro.events import UnpredictableEvent, group_events
from repro.ml import StandardScaler, balanced_accuracy_score, confusion_matrix, precision_recall_f1
from repro.net import Direction, Packet, Trace
from repro.predictability import cdf, label_predictable, quantize_iat

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

ports = st.integers(min_value=0, max_value=65535)
sizes = st.integers(min_value=0, max_value=65535)
timestamps = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


@st.composite
def packets(draw):
    return Packet(
        timestamp=draw(timestamps),
        size=draw(sizes),
        src_ip="10.0.0.1",
        dst_ip="10.0.0.2",
        src_port=draw(ports),
        dst_port=draw(ports),
        protocol=draw(st.sampled_from(["tcp", "udp"])),
        direction=draw(st.sampled_from(list(Direction))),
        device=draw(st.sampled_from(["a", "b"])),
        tcp_flags=draw(st.integers(min_value=0, max_value=255)),
        tls_version=draw(st.sampled_from([0, 10, 11, 12, 13])),
    )


class TestPacketProperties:
    @given(packets())
    def test_dict_roundtrip(self, packet):
        assert Packet.from_dict(packet.to_dict()) == packet

    @given(st.lists(packets(), max_size=30))
    def test_trace_always_sorted(self, packet_list):
        trace = Trace(packet_list)
        times = [p.timestamp for p in trace]
        assert times == sorted(times)

    @given(st.lists(packets(), max_size=30))
    def test_filter_is_subset(self, packet_list):
        trace = Trace(packet_list)
        filtered = trace.filter(lambda p: p.size > 100)
        assert len(filtered) <= len(trace)
        assert all(p.size > 100 for p in filtered)


class TestPredictabilityProperties:
    @given(st.floats(min_value=0.0, max_value=1e5, allow_nan=False))
    def test_quantize_non_negative(self, iat):
        assert quantize_iat(iat) >= 0

    @given(
        st.floats(min_value=0.01, max_value=1e4),
        st.floats(min_value=0.01, max_value=10.0),
    )
    def test_quantize_within_half_resolution(self, iat, resolution):
        bin_index = quantize_iat(iat, resolution)
        assert abs(bin_index * resolution - iat) <= resolution / 2 + 1e-9

    @given(st.lists(packets(), max_size=40))
    @settings(deadline=None)
    def test_mask_length_invariant(self, packet_list):
        trace = Trace(packet_list)
        assert len(label_predictable(trace)) == len(trace)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=50))
    def test_cdf_properties(self, values):
        x, y = cdf(values)
        assert len(x) == len(y) == len(values)
        if len(values):
            assert y[-1] == 1.0
            assert np.all(np.diff(x) >= 0)


class TestEventProperties:
    @given(st.lists(packets(), min_size=1, max_size=40), st.floats(min_value=0.1, max_value=60.0))
    @settings(deadline=None)
    def test_grouping_partitions_unpredictable_packets(self, packet_list, gap):
        trace = Trace(packet_list)
        mask = [False] * len(trace)
        events = group_events(trace, mask, gap=gap)
        assert sum(len(e) for e in events) == len(trace)

    @given(st.lists(packets(), min_size=1, max_size=40), st.floats(min_value=0.1, max_value=60.0))
    @settings(deadline=None)
    def test_gap_invariant_within_events(self, packet_list, gap):
        trace = Trace(packet_list)
        events = group_events(trace, [False] * len(trace), gap=gap)
        for event in events:
            diffs = np.diff([p.timestamp for p in event.packets])
            assert np.all(diffs <= gap + 1e-9)


class TestMetricProperties:
    labels = st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60)

    @given(labels, labels)
    def test_confusion_total(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        matrix, _ = confusion_matrix(y_true[:n], y_pred[:n])
        assert matrix.sum() == n

    @given(labels)
    def test_perfect_prediction_metrics(self, y):
        assert balanced_accuracy_score(y, y) == 1.0
        p, r, f = precision_recall_f1(y, y, positive=y[0])
        assert (p, r, f) == (1.0, 1.0, 1.0)

    @given(labels, labels)
    def test_metric_bounds(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        if n == 0:
            return
        p, r, f = precision_recall_f1(y_true[:n], y_pred[:n], positive=0)
        for value in (p, r, f):
            assert 0.0 <= value <= 1.0
        assert 0.0 <= balanced_accuracy_score(y_true[:n], y_pred[:n]) <= 1.0


class TestScalerProperties:
    @given(
        st.lists(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=3,
                max_size=3,
            ),
            min_size=2,
            max_size=40,
        )
    )
    def test_roundtrip(self, rows):
        X = np.asarray(rows)
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(back, X, atol=1e-6 * max(1.0, np.abs(X).max()))


class TestCryptoProperties:
    @given(st.binary(min_size=0, max_size=200))
    def test_sign_verify_any_payload(self, payload):
        store = SecureKeystore("p")
        store.generate_key("k")
        assert store.verify(store.sign("k", payload))

    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=50, unique=True))
    def test_replay_cache_first_occurrence_fresh(self, identifiers):
        cache = ReplayCache(window_seconds=1e6)
        for i, identifier in enumerate(identifiers):
            assert cache.check_and_register(identifier, now=float(i))
        for identifier in identifiers[-10:]:
            assert not cache.check_and_register(identifier, now=float(len(identifiers)))
