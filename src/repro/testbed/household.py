"""Household simulator: renders device profiles into labelled traces.

Replaces the paper's physical testbed (Raspberry Pi access point + ARP
spoofing capture).  A :class:`Household` hosts a set of devices at one
location, schedules their control flows, routines and human-like manual
interactions (the NJ testbed drove these via ADB; the IL household used
a real user with a logging app), and renders everything into a single
timestamp-sorted :class:`~repro.net.trace.Trace` with ground-truth
labels and a :class:`~repro.events.labeling.GroundTruthLog`.

:func:`generate_labeled_events` is a fast path that renders unpredictable
events directly — the form consumed by the §4 classification experiments,
where the periodic background traffic is irrelevant.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..events.grouping import UnpredictableEvent
from ..events.labeling import GroundTruthLog, InteractionWindow, RoutineFiring
from ..net.packet import TCP_ACK, TCP_PSH, TLS_1_2, TLS_NONE, Direction, Packet, TrafficClass
from ..net.trace import Trace
from ..util import spawn_seed
from .cloud import CloudDirectory, Endpoint, Location
from .devices import (
    BurstSpec,
    DeviceProfile,
    EventTemplate,
    PeriodicFlow,
    StreamSpec,
    profile_for,
)
from .routines import RoutineSchedule

__all__ = [
    "HouseholdConfig",
    "Household",
    "SimulationResult",
    "generate_labeled_events",
    "render_event",
]

#: How often a device re-opens its persistent cloud connection, drawing a
#: fresh ephemeral source port.  This is the behaviour §2.1 observed that
#: motivates the PortLess flow definition: same destination, new ports.
RECONNECT_PERIOD_S = 420.0


@dataclass
class HouseholdConfig:
    """Simulation parameters of one household."""

    location: Location = Location.US
    duration_s: float = 4 * 3600.0
    seed: int = 0
    routine_period_s: float = 1800.0
    manual_interval_s: Tuple[float, float] = (600.0, 1500.0)
    subnet: str = "192.168.1."
    phone_ip: str = "192.168.1.100"


@dataclass
class SimulationResult:
    """Output of one household simulation."""

    trace: Trace
    log: GroundTruthLog
    cloud: CloudDirectory
    device_ips: Dict[str, str]
    phone_ip: str


def _ephemeral_port(rng: np.random.Generator) -> int:
    return int(rng.integers(32768, 61000))


def _event_local_port(service: str, rng: np.random.Generator) -> int:
    """Local port for an event connection: a small per-service pool.

    IoT SDKs typically bind client sockets from a narrow range per
    subsystem, so event-time local ports are only mildly variable — they
    carry weak signal rather than pure noise (the paper's feature set
    includes both ports and still classifies well).
    """
    base = 37000 + (zlib.crc32(service.encode("utf-8")) % 180) * 16
    return base + int(rng.integers(0, 16))


def _make_packet(
    timestamp: float,
    size: int,
    direction: Direction,
    device: str,
    device_ip: str,
    endpoint: Endpoint,
    local_port: int,
    protocol: str,
    tls: int,
    flags: int,
    traffic_class: TrafficClass,
    event_id: Optional[str] = None,
    remote_ip: Optional[str] = None,
) -> Packet:
    remote = remote_ip if remote_ip is not None else endpoint.ip
    if direction is Direction.OUTBOUND:
        src_ip, dst_ip = device_ip, remote
        src_port, dst_port = local_port, endpoint.port
    else:
        src_ip, dst_ip = remote, device_ip
        src_port, dst_port = endpoint.port, local_port
    return Packet(
        timestamp=timestamp,
        size=size,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        direction=direction,
        device=device,
        tcp_flags=flags if protocol == "tcp" else 0,
        tls_version=tls if protocol == "tcp" else TLS_NONE,
        traffic_class=traffic_class,
        event_id=event_id,
    )


def _render_periodic(
    profile: DeviceProfile,
    flow: PeriodicFlow,
    device_ip: str,
    endpoint: Endpoint,
    t0: float,
    t1: float,
    rng: np.random.Generator,
) -> List[Packet]:
    """Render one periodic control flow across ``[t0, t1)``."""
    packets: List[Packet] = []
    local_port = _ephemeral_port(rng)
    remote_ip = endpoint.pick_ip(rng)
    next_reconnect = t0 + RECONNECT_PERIOD_S
    t = t0 + flow.phase_s
    while t < t1:
        if t >= next_reconnect:
            local_port = _ephemeral_port(rng)
            remote_ip = endpoint.pick_ip(rng)
            next_reconnect += RECONNECT_PERIOD_S
        jitter = float(rng.uniform(-flow.jitter_s, flow.jitter_s))
        for size, direction in (
            (flow.size_out, Direction.OUTBOUND),
            (flow.size_in, Direction.INBOUND),
        ):
            if size > 0:
                packets.append(
                    _make_packet(
                        timestamp=t + jitter + (0.01 if direction is Direction.INBOUND else 0.0),
                        size=size,
                        direction=direction,
                        device=profile.name,
                        device_ip=device_ip,
                        endpoint=endpoint,
                        local_port=local_port,
                        protocol=flow.protocol,
                        tls=flow.tls,
                        flags=TCP_ACK,
                        traffic_class=TrafficClass.CONTROL,
                        remote_ip=remote_ip,
                    )
                )
        t += flow.period_s
    return packets


def render_event(
    profile: DeviceProfile,
    template: EventTemplate,
    start: float,
    traffic_class: TrafficClass,
    device_ip: str,
    endpoints: Dict[str, Endpoint],
    rng: np.random.Generator,
    event_id: Optional[str] = None,
) -> List[Packet]:
    """Render one unpredictable event from a template.

    Every per-packet attribute is a two-valued marker drawn with the
    template's class-dependent probability (see
    :class:`~repro.testbed.devices.EventTemplate`).  The first packet
    additionally carries the template's distinctive attributes: a fixed
    notification size for rule-based devices, and the UDP opener for the
    WyzeCam.  ``endpoints`` must contain the template's two services.
    """
    n = int(rng.integers(template.n_packets[0], template.n_packets[1] + 1))
    local_port = _event_local_port(template.service_high, rng)
    # one load-balanced address per (event, service) connection
    event_ips = {service: ep.pick_ip(rng) for service, ep in endpoints.items()}
    packets: List[Packet] = []
    t = start
    for i in range(n):
        service = (
            template.service_high
            if rng.random() < template.port_high_prob
            else template.service_low
        )
        endpoint = endpoints[service]
        if i == 0:
            inbound = rng.random() < template.first_inbound_prob
            udp = rng.random() < template.first_udp_prob
            protocol = "udp" if udp else ("tcp" if rng.random() < template.tcp_prob else "udp")
        else:
            inbound = rng.random() < template.inbound_prob
            protocol = "tcp" if rng.random() < template.tcp_prob else "udp"
        if protocol == "tcp":
            tls = TLS_1_2 if rng.random() < template.tls_prob else TLS_NONE
            flags = TCP_PSH | TCP_ACK if rng.random() < template.psh_prob else TCP_ACK
        else:
            tls = TLS_NONE
            flags = 0
        if i == 0 and template.first_size is not None:
            size = template.first_size
        else:
            mode = template.size_big if rng.random() < template.size_big_prob else template.size_small
            size = max(60, int(rng.normal(*mode)))
        packets.append(
            _make_packet(
                timestamp=t,
                size=size,
                direction=Direction.INBOUND if inbound else Direction.OUTBOUND,
                device=profile.name,
                device_ip=device_ip,
                endpoint=endpoint,
                local_port=local_port,
                protocol=protocol,
                tls=tls,
                flags=flags,
                traffic_class=traffic_class,
                event_id=event_id,
                remote_ip=event_ips[service],
            )
        )
        if rng.random() < template.iat_fast_prob:
            t += float(rng.uniform(*template.iat_fast))
        else:
            t += float(rng.uniform(*template.iat_slow))
    return packets


def _render_burst(
    profile: DeviceProfile,
    burst: BurstSpec,
    start: float,
    traffic_class: TrafficClass,
    device_ip: str,
    endpoint: Endpoint,
    rng: np.random.Generator,
    event_id: Optional[str] = None,
) -> List[Packet]:
    """Render a predictable repetitive burst (same size, constant IAT)."""
    local_port = _ephemeral_port(rng)
    remote_ip = endpoint.pick_ip(rng)
    direction = Direction.INBOUND if burst.inbound else Direction.OUTBOUND
    return [
        _make_packet(
            timestamp=start + i * burst.iat_s + float(rng.uniform(-0.02, 0.02)),
            size=burst.size,
            remote_ip=remote_ip,
            direction=direction,
            device=profile.name,
            device_ip=device_ip,
            endpoint=endpoint,
            local_port=local_port,
            protocol="tcp",
            tls=TLS_1_2,
            flags=TCP_PSH | TCP_ACK,
            traffic_class=traffic_class,
            event_id=event_id,
        )
        for i in range(burst.n_packets)
    ]


def _render_stream(
    profile: DeviceProfile,
    stream: StreamSpec,
    start: float,
    device_ip: str,
    endpoint: Endpoint,
    rng: np.random.Generator,
    event_id: Optional[str] = None,
) -> List[Packet]:
    """Render a constant-rate outbound media stream (camera video)."""
    duration = float(rng.uniform(*stream.duration_range_s))
    n = max(2, int(duration * stream.rate_pps))
    iat = 1.0 / stream.rate_pps
    local_port = _ephemeral_port(rng)
    remote_ip = endpoint.pick_ip(rng)
    return [
        _make_packet(
            timestamp=start + i * iat + float(rng.uniform(-0.005, 0.005)),
            size=stream.size,
            remote_ip=remote_ip,
            direction=Direction.OUTBOUND,
            device=profile.name,
            device_ip=device_ip,
            endpoint=endpoint,
            local_port=local_port,
            protocol="udp",
            tls=TLS_NONE,
            flags=0,
            traffic_class=TrafficClass.MANUAL,
            event_id=event_id,
        )
        for i in range(n)
    ]


def _confused_template(
    profile: DeviceProfile,
    traffic_class: TrafficClass,
    rng: np.random.Generator,
) -> EventTemplate:
    """Pick the event template, applying cross-class confusion.

    With probability ``profile.confusion`` an event is rendered from a
    *different* class's template while keeping its ground-truth label —
    the source of the classifier's irreducible error, standing in for
    the "complex interactions not covered by the training set" the paper
    blames for e.g. the E4's misclassifications.
    """
    manual_templates = profile.manual_templates()
    templates = {
        TrafficClass.MANUAL: manual_templates[int(rng.integers(0, len(manual_templates)))],
        TrafficClass.AUTOMATED: profile.automated,
        TrafficClass.CONTROL: profile.control_noise,
    }
    own = templates[traffic_class]
    if profile.confusion > 0 and rng.random() < profile.confusion:
        others = [t for cls, t in templates.items() if cls is not traffic_class]
        return others[int(rng.integers(0, len(others)))]
    return own


class Household:
    """One simulated household: devices + schedules -> labelled trace."""

    def __init__(
        self,
        devices: Sequence[Union[str, DeviceProfile]],
        config: Optional[HouseholdConfig] = None,
        cloud: Optional[CloudDirectory] = None,
        routine_schedule: Optional["RoutineSchedule"] = None,
    ) -> None:
        self.config = config or HouseholdConfig()
        self.profiles: List[DeviceProfile] = [
            profile_for(d) if isinstance(d, str) else d for d in devices
        ]
        #: optional IFTTT-style schedule overriding the default periodic
        #: automation plan (see :mod:`repro.testbed.routines`)
        self.routine_schedule = routine_schedule
        self.cloud = cloud or CloudDirectory(seed=spawn_seed(self.config.seed, "cloud"))
        self.device_ips: Dict[str, str] = {
            profile.name: f"{self.config.subnet}{10 + i}"
            for i, profile in enumerate(self.profiles)
        }
        self._event_counter = itertools.count()

    def _endpoint(self, profile: DeviceProfile, service: str) -> Endpoint:
        return self.cloud.endpoint(profile.vendor, service, self.config.location)

    def _event_endpoints(
        self, profile: DeviceProfile, template: EventTemplate
    ) -> Dict[str, Endpoint]:
        return {
            service: self._endpoint(profile, service) for service in template.services()
        }

    def _next_event_id(self, profile: DeviceProfile, kind: str) -> str:
        return f"{profile.name}-{kind}-{next(self._event_counter)}"

    def simulate(self) -> SimulationResult:
        """Run the simulation and return the labelled capture."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        packets: List[Packet] = []
        log = GroundTruthLog()

        for profile in self.profiles:
            device_ip = self.device_ips[profile.name]

            # 1. Periodic control flows (the predictable bulk).
            for flow in profile.control_flows:
                endpoint = self._endpoint(profile, flow.service)
                packets.extend(
                    _render_periodic(profile, flow, device_ip, endpoint, 0.0, cfg.duration_s, rng)
                )

            # 2. Unpredictable control events (Poisson arrivals).
            rate = profile.control_noise_per_hour / 3600.0
            t = float(rng.exponential(1.0 / rate)) if rate > 0 else float("inf")
            while t < cfg.duration_s:
                template = _confused_template(profile, TrafficClass.CONTROL, rng)
                packets.extend(
                    render_event(
                        profile,
                        template,
                        t,
                        TrafficClass.CONTROL,
                        device_ip,
                        self._event_endpoints(profile, template),
                        rng,
                        event_id=self._next_event_id(profile, "control"),
                    )
                )
                t += float(rng.exponential(1.0 / rate))

            # 3. Routines: a predictable burst + unpredictable notification.
            if self.routine_schedule is not None:
                plan = self.routine_schedule.expand(cfg.duration_s, seed=cfg.seed)
                firing_times = [t for _, t in plan.get(profile.name, [])]
            else:
                firing_times = None
                t = float(rng.uniform(60.0, cfg.routine_period_s))
            firing_iter = iter(firing_times) if firing_times is not None else None
            if firing_iter is not None:
                t = next(firing_iter, cfg.duration_s + 1.0)
            while t < cfg.duration_s:
                event_id = self._next_event_id(profile, "automated")
                template = _confused_template(profile, TrafficClass.AUTOMATED, rng)
                packets.extend(
                    render_event(
                        profile,
                        template,
                        t,
                        TrafficClass.AUTOMATED,
                        device_ip,
                        self._event_endpoints(profile, template),
                        rng,
                        event_id=event_id,
                    )
                )
                if profile.automated_burst is not None:
                    burst_endpoint = self._endpoint(profile, profile.automated_burst.service)
                    packets.extend(
                        _render_burst(
                            profile,
                            profile.automated_burst,
                            t + 2.0,
                            TrafficClass.AUTOMATED,
                            device_ip,
                            burst_endpoint,
                            rng,
                            event_id=event_id,
                        )
                    )
                log.add_routine(RoutineFiring(device=profile.name, timestamp=t, duration=30.0))
                if firing_iter is not None:
                    t = next(firing_iter, cfg.duration_s + 1.0)
                else:
                    t += cfg.routine_period_s

            # 4. Manual interactions (human-like schedule, per device).
            t = float(rng.uniform(*cfg.manual_interval_s))
            while t < cfg.duration_s:
                event_id = self._next_event_id(profile, "manual")
                template = _confused_template(profile, TrafficClass.MANUAL, rng)
                event_packets = render_event(
                    profile,
                    template,
                    t,
                    TrafficClass.MANUAL,
                    device_ip,
                    self._event_endpoints(profile, template),
                    rng,
                    event_id=event_id,
                )
                packets.extend(event_packets)
                end = max(p.timestamp for p in event_packets)
                if profile.manual_stream is not None:
                    stream_endpoint = self._endpoint(profile, profile.manual_stream.service)
                    stream_packets = _render_stream(
                        profile, profile.manual_stream, end + 0.5, device_ip, stream_endpoint, rng, event_id
                    )
                    packets.extend(stream_packets)
                    end = max(end, max(p.timestamp for p in stream_packets))
                if profile.manual_tail is not None:
                    tail_endpoint = self._endpoint(profile, profile.manual_tail.service)
                    tail_packets = _render_burst(
                        profile,
                        profile.manual_tail,
                        end + 0.3,
                        TrafficClass.MANUAL,
                        device_ip,
                        tail_endpoint,
                        rng,
                        event_id=event_id,
                    )
                    packets.extend(tail_packets)
                    end = max(end, max(p.timestamp for p in tail_packets))
                log.add_interaction(
                    InteractionWindow(device=profile.name, start=t - 1.0, end=end + 1.0)
                )
                t = end + float(rng.uniform(*cfg.manual_interval_s))

        trace = Trace(packets, dns=self.cloud.dns, name=f"household-{cfg.location.value}")
        return SimulationResult(
            trace=trace,
            log=log,
            cloud=self.cloud,
            device_ips=self.device_ips,
            phone_ip=cfg.phone_ip,
        )


def generate_labeled_events(
    profile: Union[str, DeviceProfile],
    location: Location = Location.US,
    n_manual: int = 50,
    n_automated: int = 60,
    n_control: int = 60,
    seed: int = 0,
    cloud: Optional[CloudDirectory] = None,
) -> List[UnpredictableEvent]:
    """Render labelled unpredictable events directly (no background traffic).

    This is the dataset shape the §4 classification experiments consume:
    each event is an :class:`UnpredictableEvent` whose packets carry
    ground-truth classes.  Events are spaced far apart so they would
    never merge under the 5-second grouping rule.
    """
    if isinstance(profile, str):
        profile = profile_for(profile)
    rng = np.random.default_rng(seed)
    cloud = cloud or CloudDirectory(seed=spawn_seed(seed, "cloud"))
    device_ip = "192.168.1.10"
    events: List[UnpredictableEvent] = []
    t = 0.0
    plan = (
        [(TrafficClass.MANUAL, n_manual)]
        + [(TrafficClass.AUTOMATED, n_automated)]
        + [(TrafficClass.CONTROL, n_control)]
    )
    counter = itertools.count()
    for traffic_class, count in plan:
        for _ in range(count):
            template = _confused_template(profile, traffic_class, rng)
            endpoints = {
                service: cloud.endpoint(profile.vendor, service, location)
                for service in template.services()
            }
            event_packets = render_event(
                profile,
                template,
                t,
                traffic_class,
                device_ip,
                endpoints,
                rng,
                event_id=f"{profile.name}-{traffic_class.value}-{next(counter)}",
            )
            events.append(UnpredictableEvent(packets=event_packets))
            t = max(p.timestamp for p in event_packets) + 30.0
    return events
