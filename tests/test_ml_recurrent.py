"""Unit tests for the RNN sequence classifier (§7 future work)."""

import numpy as np
import pytest

from repro.features import event_labels, event_sequences
from repro.ml import SimpleRNNClassifier, pad_sequences


def _order_dataset(n=50, seed=0):
    """Class 0: rising first feature; class 1: falling (order matters)."""
    rng = np.random.default_rng(seed)
    X, y = [], []
    for _ in range(n):
        t = int(rng.integers(3, 6))
        base = np.linspace(0.0, 1.0, t).reshape(-1, 1) + rng.normal(0, 0.05, (t, 1))
        noise = rng.normal(size=(t, 2))
        X.append(np.hstack([base, noise]))
        y.append(0)
        X.append(np.hstack([base[::-1], noise]))
        y.append(1)
    return X, np.asarray(y)


class TestPadding:
    def test_shapes_and_mask(self):
        padded, mask = pad_sequences([np.zeros((2, 3)), np.ones((4, 3))])
        assert padded.shape == (2, 4, 3)
        assert mask.tolist() == [[1, 1, 0, 0], [1, 1, 1, 1]]

    def test_max_len_truncates(self):
        padded, mask = pad_sequences([np.ones((6, 2))], max_len=3)
        assert padded.shape == (1, 3, 2)
        assert mask.sum() == 3

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pad_sequences([np.zeros((2, 3)), np.zeros((2, 4))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pad_sequences([])


class TestRNN:
    def test_learns_temporal_order(self):
        X, y = _order_dataset()
        model = SimpleRNNClassifier(hidden_size=16, n_epochs=200, seed=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_generalises(self):
        X, y = _order_dataset(seed=0)
        X_test, y_test = _order_dataset(seed=9)
        model = SimpleRNNClassifier(hidden_size=16, n_epochs=200, seed=0).fit(X, y)
        assert model.score(X_test, y_test) > 0.9

    def test_flattened_features_cannot_see_order(self):
        """The RNN captures signal a bag-of-features model cannot."""
        from repro.ml import GaussianNB

        X, y = _order_dataset()
        # bag-of-features: per-sequence feature means (order destroyed)
        X_flat = np.array([seq.mean(axis=0) for seq in X])
        flat_score = GaussianNB().fit(X_flat, y).score(X_flat, y)
        rnn_score = SimpleRNNClassifier(hidden_size=16, n_epochs=200, seed=0).fit(X, y).score(X, y)
        assert rnn_score > flat_score + 0.2

    def test_accepts_3d_array(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 5, 3))
        y = (X[:, :, 0].mean(axis=1) > 0).astype(int)
        model = SimpleRNNClassifier(hidden_size=8, n_epochs=150, seed=0).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            SimpleRNNClassifier().predict(np.zeros((1, 2, 3)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SimpleRNNClassifier(hidden_size=0)
        with pytest.raises(ValueError):
            SimpleRNNClassifier(n_epochs=0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            SimpleRNNClassifier().fit(np.zeros((3, 2, 2)), [0, 1])

    def test_proba_rows_sum_to_one(self):
        X, y = _order_dataset(n=20)
        model = SimpleRNNClassifier(hidden_size=8, n_epochs=80, seed=0).fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestOnEvents:
    def test_classifies_iot_events(self, echodot_events):
        sequences = event_sequences(echodot_events)
        labels = event_labels(echodot_events)
        train = list(range(0, len(sequences), 2))
        test = list(range(1, len(sequences), 2))
        model = SimpleRNNClassifier(hidden_size=24, n_epochs=200, seed=0)
        model.fit([sequences[i] for i in train], labels[train])
        assert model.score([sequences[i] for i in test], labels[test]) > 0.7
