"""Tests for the fiat-repro command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def capture_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "home.jsonl")
    code = main(
        [
            "simulate",
            "--devices",
            "SP10",
            "EchoDot4",
            "--duration",
            "900",
            "--seed",
            "3",
            "--output",
            path,
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--output", "x.jsonl"])
        assert args.duration == 3600.0
        assert args.seed == 0


class TestSimulate(object):
    def test_writes_jsonl(self, capture_path, capsys):
        from repro.net import Trace

        trace = Trace.from_jsonl(capture_path)
        assert len(trace) > 100
        assert set(trace.devices()) == {"SP10", "EchoDot4"}

    def test_dns_survives_roundtrip(self, capture_path):
        from repro.net import Trace

        trace = Trace.from_jsonl(capture_path)
        resolved = sum(1 for p in trace if trace.dns.domain_for(p.remote_ip))
        assert resolved / len(trace) > 0.9

    def test_writes_pcap(self, tmp_path):
        path = str(tmp_path / "home.pcap")
        assert main(["simulate", "--devices", "SP10", "--duration", "300",
                     "--output", path]) == 0
        from repro.net.pcap import read_pcap

        assert len(read_pcap(path)) > 0


class TestAnalyze:
    def test_analyze_output(self, capture_path, capsys):
        assert main(["analyze", capture_path]) == 0
        out = capsys.readouterr().out
        assert "[portless]" in out and "[classic]" in out
        assert "EchoDot4" in out and "SP10" in out

    def test_single_definition(self, capture_path, capsys):
        assert main(["analyze", capture_path, "--definitions", "portless"]) == 0
        out = capsys.readouterr().out
        assert "[classic]" not in out


class TestEvents:
    def test_events_listing(self, capture_path, capsys):
        assert main(["events", capture_path, "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "unpredictable events" in out


class TestEvaluate:
    def test_evaluate_rule_device(self, capsys):
        assert main(
            [
                "evaluate",
                "--devices",
                "SP10",
                "--manual",
                "4",
                "--non-manual",
                "6",
                "--attacks",
                "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "SP10" in out
        assert "humanness" in out


class TestTrain:
    def test_train_and_save_model(self, tmp_path, capsys):
        path = str(tmp_path / "echodot4.json")
        assert main(
            ["train", "--device", "EchoDot4", "--manual", "20",
             "--non-manual", "30", "--output", path]
        ) == 0
        from repro.ml.persistence import load_model

        model, scaler, metadata = load_model(open(path).read())
        assert metadata["device"] == "EchoDot4"
        assert scaler is not None

    def test_rule_device_refused(self, tmp_path):
        path = str(tmp_path / "sp10.json")
        assert main(["train", "--device", "SP10", "--output", path]) == 1


class TestScenario:
    def test_example_scenario(self, capsys):
        assert main(["scenario", "--example"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["attacks_blocked"] >= 1
        assert data["user_commands_executed"] >= 1

    def test_scenario_from_file(self, tmp_path, capsys):
        from repro.scenarios import EXAMPLE_SCENARIO

        path = str(tmp_path / "scenario.json")
        with open(path, "w") as handle:
            json.dump(
                {**EXAMPLE_SCENARIO, "timeline": EXAMPLE_SCENARIO["timeline"][:2]}, handle
            )
        assert main(["scenario", path]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["outcomes"]) == 2


class TestExportProfile:
    def test_export_to_stdout(self, capture_path, capsys):
        assert main(
            ["export-profile", capture_path, "--device", "SP10", "--bootstrap", "600"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["device"] == "SP10"
        assert document["acl"]

    def test_export_to_file(self, capture_path, tmp_path, capsys):
        out_path = str(tmp_path / "sp10.json")
        assert main(
            [
                "export-profile",
                capture_path,
                "--device",
                "SP10",
                "--bootstrap",
                "600",
                "--output",
                out_path,
            ]
        ) == 0
        assert json.load(open(out_path))["device"] == "SP10"

    def test_unknown_device_errors(self, capture_path):
        assert main(["export-profile", capture_path, "--device", "Ghost"]) == 1
