"""Unit tests for preprocessing (scaler, label encoder)."""

import numpy as np
import pytest

from repro.ml import LabelEncoder, StandardScaler


class TestStandardScaler:
    def test_unit_variance(self, rng):
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        Xs = StandardScaler().fit_transform(X)
        assert np.allclose(Xs.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Xs.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_divided(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0]])
        Xs = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xs))
        assert np.allclose(Xs[:, 1], 0.0)

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform([[1.0]])

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(ValueError, match="features"):
            scaler.transform([[1.0]])

    def test_without_mean_or_std(self, rng):
        X = rng.normal(loc=10.0, size=(50, 2))
        no_mean = StandardScaler(with_mean=False).fit_transform(X)
        assert no_mean.mean() > 1.0  # mean untouched
        no_std = StandardScaler(with_std=False).fit_transform(X)
        assert np.allclose(no_std.mean(axis=0), 0.0, atol=1e-9)


class TestLabelEncoder:
    def test_roundtrip(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["b", "a", "b", "c"])
        assert list(enc.inverse_transform(codes)) == ["b", "a", "b", "c"]

    def test_codes_sorted(self):
        enc = LabelEncoder().fit(["z", "a"])
        assert list(enc.classes_) == ["a", "z"]
        assert list(enc.transform(["a", "z"])) == [0, 1]

    def test_unseen_label_rejected(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError, match="unseen"):
            enc.transform(["c"])

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])
