"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper and prints the
rows it reports next to the published values (shape comparison — our
substrate is a simulator, not the authors' testbed).  Heavy inputs are
generated once per session here.
"""

import numpy as np
import pytest

from repro.datasets import (
    generate_inspector,
    generate_moniotr_active,
    generate_moniotr_idle,
    generate_yourthings,
)
from repro.testbed import Household, HouseholdConfig, TESTBED, generate_labeled_events

from benchmarks._helpers import TABLE3_DATASETS

@pytest.fixture(scope="session")
def yourthings_corpus():
    """YourThings-like corpus: 40 devices, 40 minutes."""
    return generate_yourthings(n_devices=40, duration_s=2400.0, seed=0)


@pytest.fixture(scope="session")
def moniotr_corpora():
    """Mon(IoT)r-like idle and active splits."""
    idle = generate_moniotr_idle(n_devices=30, duration_s=1500.0, seed=10)
    active = generate_moniotr_active(n_devices=30, n_chunks=8, seed=11)
    return idle, active

@pytest.fixture(scope="session")
def inspector_corpus():
    """IoT-Inspector-like corpus (packet level; analysed at 5 s windows)."""
    return generate_inspector(n_devices=20, duration_s=1200.0, seed=21)


@pytest.fixture(scope="session")
def testbed_household():
    """The full 10-device testbed simulated for two hours."""
    config = HouseholdConfig(duration_s=7200.0, seed=1)
    return Household(list(TESTBED), config).simulate()


@pytest.fixture(scope="session")
def labeled_event_sets():
    """Per-(device, location) labelled event datasets for §4 experiments.

    Counts follow the paper: ~50 manual events per device alongside
    60-180 non-manual unpredictable events.
    """
    from repro.testbed import Location

    datasets = {}
    for i, (device, loc_name) in enumerate(TABLE3_DATASETS):
        location = Location[loc_name]
        datasets[(device, loc_name)] = generate_labeled_events(
            device,
            location=location,
            n_manual=50,
            n_automated=80,
            n_control=100,
            seed=100 + i,
        )
    return datasets
