"""Ablation: the event-grouping gap threshold (§3.2).

The paper groups unpredictable packets into events with a 5-second gap,
"chosen empirically"; it claims the threshold "has very limited impact
on the results".  This bench sweeps the gap from 1 to 30 seconds on the
testbed trace and shows that (a) the number of recovered events is
stable across a wide plateau around 5 s, and (b) the ground-truth purity
of events (one event = one underlying cause) stays high.
"""

import numpy as np

from repro.events import group_events
from repro.net import FlowDefinition
from repro.predictability import label_predictable

from benchmarks._helpers import print_table


def test_ablation_event_gap(benchmark, testbed_household):
    trace = testbed_household.trace
    dns = testbed_household.cloud.dns
    mask = label_predictable(trace, FlowDefinition.PORTLESS, dns=dns)

    def group(gap):
        return group_events(trace, mask, gap=gap)

    benchmark.pedantic(lambda: group(5.0), rounds=1, iterations=1)

    def purity(events):
        pure = 0
        for event in events:
            ids = {p.event_id for p in event.packets if p.event_id}
            if len(ids) <= 1:
                pure += 1
        return pure / len(events) if events else 0.0

    rows = []
    counts = {}
    for gap in (1.0, 2.0, 5.0, 10.0, 20.0, 30.0):
        events = group(gap)
        counts[gap] = len(events)
        rows.append((f"{gap:.0f}s", len(events), f"{purity(events):.2f}"))
    print_table(
        "Ablation — event gap threshold (paper: 5 s, 'very limited impact')",
        ("gap", "events recovered", "single-cause purity"),
        rows,
    )

    # Limited impact: a wide plateau from the deployed 5 s upwards
    # (thresholds below the within-event idle gaps fragment events).
    assert abs(counts[5.0] - counts[10.0]) / counts[5.0] < 0.1
    assert abs(counts[5.0] - counts[30.0]) / counts[5.0] < 0.1
    assert counts[1.0] > counts[5.0]  # too-small gaps over-split
    assert purity(group(5.0)) > 0.85
