"""Exporters: JSONL audit/event stream and metrics-snapshot files.

The audit stream is an append-only sequence of JSON records, one per
line, each carrying a monotonically increasing ``seq``, a ``kind``
(``proof.signed``, ``proxy.decision``, ...), the simulated time ``t``
and — when the record belongs to a trace — the ``trace`` ID minted by
:class:`~repro.obs.tracing.TraceIdMinter`.  Records never contain wall
clock readings, so the stream of a seeded scenario is reproducible and
diffable run-to-run.

Snapshots are :class:`~repro.obs.registry.MetricsSnapshot` objects
serialised to canonical JSON; benches additionally wrap them in a
``BENCH_*.json`` envelope with derived headline numbers.
"""

from __future__ import annotations

import json
import logging
from typing import IO, Dict, Iterable, List, Optional, Union

from .registry import MetricsSnapshot

__all__ = [
    "JsonlAuditSink",
    "MemoryAuditSink",
    "read_audit",
    "events_for_trace",
    "save_snapshot",
    "load_snapshot",
    "write_bench_snapshot",
]

logger = logging.getLogger(__name__)


class JsonlAuditSink:
    """Writes audit records as one canonical JSON object per line."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.n_emitted = 0

    def emit(self, record: Dict[str, object]) -> None:
        """Append one record, stamping its sequence number."""
        payload = dict(record)
        payload["seq"] = self.n_emitted
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self.n_emitted += 1

    def flush(self) -> None:
        """Flush the underlying handle."""
        self._handle.flush()

    def close(self) -> None:
        """Flush and close (only closes handles this sink opened)."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlAuditSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class MemoryAuditSink:
    """In-memory audit sink for tests and report previews."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    @property
    def n_emitted(self) -> int:
        """Number of records captured."""
        return len(self.records)

    def emit(self, record: Dict[str, object]) -> None:
        """Append one record, stamping its sequence number."""
        payload = dict(record)
        payload["seq"] = len(self.records)
        self.records.append(payload)

    def flush(self) -> None:
        """No-op (records live in memory)."""

    def close(self) -> None:
        """No-op (records live in memory)."""


def read_audit(path: str) -> List[Dict[str, object]]:
    """Load a JSONL audit stream, skipping (and logging) corrupt lines."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                logger.warning("skipping corrupt audit line %d of %s", lineno, path)
    return records


def events_for_trace(
    records: Iterable[Dict[str, object]], trace_id: str
) -> List[Dict[str, object]]:
    """All records of one trace, in emission order.

    Includes records that *reference* the trace from another one (for
    example a ``proxy.decision`` whose ``proof_trace`` names the proof
    that authorized it), so querying a proof ID returns the full
    proof-send -> proxy-decision chain.
    """
    matched = [
        r
        for r in records
        if r.get("trace") == trace_id or r.get("proof_trace") == trace_id
    ]
    matched.sort(key=lambda r: r.get("seq", 0))
    return matched


def save_snapshot(snapshot: MetricsSnapshot, path: str) -> None:
    """Write a metrics snapshot as canonical JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(snapshot.to_json() + "\n")


def load_snapshot(path: str) -> MetricsSnapshot:
    """Inverse of :func:`save_snapshot`."""
    with open(path, "r", encoding="utf-8") as handle:
        return MetricsSnapshot.from_json(handle.read())


def write_bench_snapshot(
    path: str,
    bench: str,
    headline: Dict[str, object],
    snapshot: Optional[MetricsSnapshot] = None,
) -> None:
    """Write a machine-readable ``BENCH_*.json`` result file.

    ``headline`` carries the bench's derived numbers (packets/sec, p95
    latencies, drop counts); ``snapshot`` optionally embeds the full
    registry state backing them.
    """
    document = {
        "bench": bench,
        "headline": headline,
        "metrics": None if snapshot is None else json.loads(snapshot.to_json()),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, indent=2)
        handle.write("\n")
    logger.info("wrote bench snapshot %s", path)
