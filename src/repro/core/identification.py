"""Passive device identification (paper §7, "Road to Production").

The paper envisions production FIAT downloading "one model per IoT
device and software version ... automatically as FIAT identifies a new
device", delegating identification itself to the rich related work
(§8: port-scan heuristics, ML over traffic characteristics).  This
module implements that missing piece in the same passive spirit: a
classifier over *flow-level* characteristics of a device's control
traffic — the traffic available during FIAT's bootstrap, before any
model is assigned.

Features per device window (no payloads, no addresses):

* flow structure: number of distinct PortLess buckets, median/min flow
  period, share of UDP flows, number of distinct remote ports;
* size structure: packet-size quantiles (25/50/75/max) and mean;
* rate structure: packets/second, bytes/second.

:class:`DeviceIdentifier` trains on labelled captures (simulated from
the testbed profiles) and predicts the *device class* (speaker, camera,
plug, thermostat, vacuum), which selects the model family to load.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ml.base import Classifier
from ..ml.preprocessing import StandardScaler
from ..net.flows import FlowDefinition, flow_key
from ..net.trace import Trace
from ..testbed.cloud import Location
from ..testbed.devices import TESTBED, DeviceProfile
from ..testbed.household import Household, HouseholdConfig

__all__ = ["IDENTIFICATION_FEATURES", "device_fingerprint", "DeviceIdentifier"]

#: Names of the fingerprint features, aligned with `device_fingerprint`.
IDENTIFICATION_FEATURES: Tuple[str, ...] = (
    "n-flows",
    "median-period",
    "min-period",
    "udp-flow-share",
    "n-remote-ports",
    "size-p25",
    "size-p50",
    "size-p75",
    "size-max",
    "size-mean",
    "packets-per-s",
    "bytes-per-s",
    "inbound-share",
)


def device_fingerprint(trace: Trace) -> np.ndarray:
    """Flow-level fingerprint of one device's capture window."""
    if len(trace) == 0:
        raise ValueError("cannot fingerprint an empty trace")
    buckets: Dict[tuple, List[float]] = defaultdict(list)
    udp_buckets = set()
    remote_ports = set()
    sizes = []
    for packet in trace:
        key = flow_key(packet, FlowDefinition.PORTLESS, trace.dns)
        buckets[key].append(packet.timestamp)
        if packet.protocol == "udp":
            udp_buckets.add(key)
        remote_ports.add(packet.remote_port)
        sizes.append(packet.size)

    periods = []
    for timestamps in buckets.values():
        if len(timestamps) >= 3:
            diffs = np.diff(sorted(timestamps))
            periods.append(float(np.median(diffs)))
    duration = max(trace.duration, 1.0)
    sizes_arr = np.asarray(sizes, dtype=float)
    return np.asarray(
        [
            float(len(buckets)),
            float(np.median(periods)) if periods else 0.0,
            float(min(periods)) if periods else 0.0,
            len(udp_buckets) / len(buckets),
            float(len(remote_ports)),
            float(np.percentile(sizes_arr, 25)),
            float(np.percentile(sizes_arr, 50)),
            float(np.percentile(sizes_arr, 75)),
            float(sizes_arr.max()),
            float(sizes_arr.mean()),
            len(trace) / duration,
            float(sizes_arr.sum()) / duration,
            float(np.mean([p.direction.value == "in" for p in trace])),
        ]
    )


class DeviceIdentifier:
    """Classify a device's class from its bootstrap-window traffic."""

    def __init__(self, model: Optional[Classifier] = None) -> None:
        # A shallow tree handles the idle/active bimodality of the
        # fingerprints; distance-based models average it away.
        if model is None:
            from ..ml.tree import DecisionTreeClassifier

            model = DecisionTreeClassifier(max_depth=6, seed=0)
        self.model = model
        self.scaler = StandardScaler()
        self._fitted = False

    def fit(self, traces: Sequence[Trace], labels: Sequence[str]) -> "DeviceIdentifier":
        """Train on labelled per-device capture windows."""
        X = np.vstack([device_fingerprint(t) for t in traces])
        y = np.asarray(labels)
        self.model.fit(self.scaler.fit_transform(X), y)
        self._fitted = True
        return self

    @classmethod
    def fit_from_testbed(
        cls,
        n_windows: int = 4,
        window_s: float = 900.0,
        seed: int = 0,
        model: Optional[Classifier] = None,
    ) -> "DeviceIdentifier":
        """Train from simulated captures of every testbed device.

        Each device contributes ``n_windows`` independent bootstrap-length
        capture windows labelled with its device class.
        """
        traces: List[Trace] = []
        labels: List[str] = []
        for w in range(n_windows):
            # Alternate idle and active windows so the fingerprints stay
            # robust to whether the user happened to be operating devices
            # during the identification window.
            if w % 2 == 0:
                manual_interval = (window_s * 10, window_s * 20)  # idle
            else:
                manual_interval = (window_s / 4, window_s / 2)  # active
            config = HouseholdConfig(
                duration_s=window_s,
                seed=seed + 1000 * w,
                manual_interval_s=manual_interval,
            )
            result = Household(list(TESTBED), config).simulate()
            for name, profile in TESTBED.items():
                device_trace = result.trace.for_device(name)
                if len(device_trace) == 0:
                    continue
                device_trace.dns = result.cloud.dns
                traces.append(device_trace)
                labels.append(profile.device_class)
        identifier = cls(model=model)
        return identifier.fit(traces, labels)

    def identify(self, trace: Trace) -> str:
        """Predict the device class of one capture window."""
        if not self._fitted:
            raise RuntimeError("identifier must be fitted before identify")
        features = self.scaler.transform(device_fingerprint(trace).reshape(1, -1))
        return str(self.model.predict(features)[0])

    def identify_household(self, trace: Trace) -> Dict[str, str]:
        """Identify every device present in a household capture."""
        return {
            device: self.identify(trace.for_device(device))
            for device in trace.devices()
        }
