"""Formal FP/FN model of FIAT (paper Appendix A) and Table-6 helpers.

FIAT's end-to-end errors combine the unpredictable-event classifier and
the humanness validator.  With ``R_x`` the recall of class ``x``:

* **FP-N** (eq. 3): a non-manual event is misclassified as manual
  *and* the (absent) human activity is correctly found absent — the
  event is blocked although legitimate.
* **FP-M** (eq. 4): a manual event is correctly classified but the
  genuine human behind it fails validation — the user's own command is
  blocked.
* **FN** (eq. 5): a manual event is misclassified as non-manual (and
  sails through), or is correctly classified but a *non-human* actor is
  mistakenly validated as human — a successful attack.

Note on notation: Appendix A's equation (2) contains two typos (it
writes ``P{non_human|non_human} = R_human`` and eq. 4 then uses
``1 - R_human`` where Table 6's numbers use ``1 - R_non_human``).  The
functions here implement the formulas as *numerically used* to produce
Table 6 (verified against every row of the published table); the
docstrings flag where that differs from the Appendix's literal algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "Recalls",
    "fp_blocked_non_manual",
    "fp_blocked_manual",
    "false_negative",
    "table6_error_columns",
]


@dataclass(frozen=True)
class Recalls:
    """The four recalls feeding the Appendix-A model."""

    manual: float
    non_manual: float
    human: float
    non_human: float

    def __post_init__(self) -> None:
        for name in ("manual", "non_manual", "human", "non_human"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"recall {name} must be in [0, 1], got {value}")


def fp_blocked_non_manual(r_non_manual: float, r_human: float) -> float:
    """FP-N (eq. 3): legit control/automated traffic blocked.

    ``(1 - R_non_manual) * R_human`` — misclassified as manual while no
    human activity is (correctly) found.  Matches Table 6's first error
    column (e.g. Echo Dot 4: ``(1-0.985) * 0.934 = 1.40 %``).
    """
    return (1.0 - r_non_manual) * r_human


def fp_blocked_manual(r_manual: float, r_non_human: float) -> float:
    """FP-M (eq. 4): the user's own manual command blocked.

    Correctly classified manual (``R_manual``) but the human fails
    validation.  Table 6's numbers use ``1 - R_non_human`` for the
    mis-validation probability (e.g. Echo Dot 4:
    ``0.98 * (1-0.982) = 1.76 %``); the Appendix's literal eq. 4 writes
    ``1 - R_human`` instead — we follow the table.
    """
    return r_manual * (1.0 - r_non_human)


def false_negative(r_manual: float, r_non_human: float) -> float:
    """FN (eq. 5): a successful attack.

    ``1 - R_manual + R_manual * (1 - R_non_human)`` — missed by the
    classifier, or caught but the (non-human) attacker passes the
    humanness check.  Echo Dot 4: ``0.02 + 0.98*0.018 = 3.76 %``.
    """
    return (1.0 - r_manual) + r_manual * (1.0 - r_non_human)


def table6_error_columns(recalls: Recalls) -> Dict[str, float]:
    """The three error columns of Table 6 for one device, as fractions."""
    return {
        "fp_manual": fp_blocked_non_manual(recalls.non_manual, recalls.human),
        "fp_non_manual": fp_blocked_manual(recalls.manual, recalls.non_human),
        "false_negative": false_negative(recalls.manual, recalls.non_human),
    }
