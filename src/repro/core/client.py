"""FIAT's client-side app (paper §5.3) as a simulation model.

The Android service monitors the foreground app via the accessibility
service, samples accelerometer + gyroscope at 250 Hz when an IoT
companion app comes up, extracts the 48 features, signs them with the
TEE-held pairing key (Jetpack security / hardware keystore) and ships
the proof to the IoT proxy over QUIC (Cronet), preferring 0-RTT.

Each step's execution cost is modelled after the Table 7 measurements:
app detection 60-90 ms, a full sensor window ~250 ms (or the 60-80 ms
lazy buffer), secure storage access ~50 ms, and the transport-dependent
connection latency from :mod:`repro.quic.transport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..crypto.keystore import SecureKeystore
from ..features.sensor_features import sensor_features
from ..quic.channel import AuthChannel
from ..quic.transport import NetworkPath, Transport
from ..testbed.phone import ManualInteraction

__all__ = ["AuthAttempt", "FiatApp"]


@dataclass
class AuthAttempt:
    """One end-to-end authentication attempt with its latency breakdown."""

    wire: bytes
    sent_at: float
    #: milliseconds per component (Table 7 rows)
    components: Dict[str, float]

    @property
    def time_to_validation_ms(self) -> float:
        """Client-side latency until the proof reaches the proxy.

        Sensor sampling is excluded, as in the paper: with 1-RTT it
        overlaps the handshake; with 0-RTT the app keeps a lazy sensor
        buffer, whose top-up cost is inside ``app_detection``.
        """
        return (
            self.components["app_detection"]
            + self.components["secure_storage"]
            + self.components["transport"]
        )


class FiatApp:
    """Client-side FIAT service bound to one paired phone."""

    def __init__(
        self,
        keystore: SecureKeystore,
        key_alias: str,
        device_id: str,
        path: NetworkPath,
        transport: Transport = Transport.QUIC_0RTT,
        seed: Optional[int] = None,
    ) -> None:
        self._rng = np.random.default_rng(seed)
        self.channel = AuthChannel(
            keystore=keystore,
            key_alias=key_alias,
            device_id=device_id,
            path=path,
            transport=transport,
            rng=self._rng,
        )

    def _component_ms(self, mean: float, sd: float) -> float:
        return float(max(0.5, self._rng.normal(mean, sd)))

    def authenticate(self, interaction: ManualInteraction, now: float) -> AuthAttempt:
        """Produce a signed humanness proof for one app interaction.

        Extracts the 48 sensor features on-device (raw motion never
        leaves the phone unprocessed), signs, and sends.
        """
        components = {
            "app_detection": self._component_ms(75.0, 9.0),
            "sensor_sampling": self._component_ms(250.0, 7.0),
            "secure_storage": self._component_ms(50.0, 4.0),
            "ml_validation": self._component_ms(2.3, 0.3),  # runs at the proxy
        }
        features = sensor_features(interaction.sensor_window)
        delivery = self.channel.send(interaction.app_package, features.tolist(), now)
        components["transport"] = delivery.latency_ms
        return AuthAttempt(wire=delivery.wire, sent_at=now, components=components)
