"""CLI-level observability tests: ``evaluate`` export + ``obs-report``."""

import json
import logging

import pytest

from repro.cli import build_parser, main
from repro.obs import load_snapshot, read_audit


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    """One small instrumented evaluate run exporting both artefacts."""
    directory = tmp_path_factory.mktemp("obs")
    metrics = str(directory / "metrics.json")
    audit = str(directory / "audit.jsonl")
    code = main(
        [
            "evaluate",
            "--devices", "SP10",
            "--manual", "8",
            "--non-manual", "4",
            "--attacks", "2",
            "--seed", "0",
            "--metrics-out", metrics,
            "--audit-out", audit,
        ]
    )
    assert code == 0
    return metrics, audit


class TestEvaluateExport:
    def test_metrics_snapshot_round_trips(self, exported):
        metrics, _ = exported
        snapshot = load_snapshot(metrics)
        assert snapshot.counter_total("proxy_packets_total") > 0
        assert snapshot.counter_total("proxy_decisions_total") > 0
        assert snapshot.counter_total("proofs_sent_total") > 0
        # the file itself is plain JSON an external dashboard can read
        with open(metrics, encoding="utf-8") as handle:
            raw = json.load(handle)
        assert "counters" in raw and "histograms" in raw

    def test_audit_stream_links_proofs_to_decisions(self, exported):
        _, audit = exported
        records = read_audit(audit)
        kinds = {r["kind"] for r in records}
        assert {"proof.signed", "channel.accept", "proxy.decision"} <= kinds
        assert any(r.get("proof_trace") for r in records if r["kind"] == "proxy.decision")
        # seq is a stable total order for consumers
        assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)


class TestObsReport:
    def test_dashboard_renders(self, exported, capsys):
        metrics, audit = exported
        assert main(["obs-report", metrics, "--audit", audit]) == 0
        out = capsys.readouterr().out
        assert "FIAT observability report" in out
        assert "top counters" in out
        assert "latency histograms (ms)" in out
        assert "proxy_packets_total" in out
        assert "audit stream" in out

    def test_dashboard_without_audit(self, exported, capsys):
        metrics, _ = exported
        assert main(["obs-report", metrics]) == 0
        assert "audit stream" not in capsys.readouterr().out

    def test_trace_query_returns_chain(self, exported, capsys):
        _, audit = exported
        records = read_audit(audit)
        decision = next(
            r for r in records if r["kind"] == "proxy.decision" and r.get("proof_trace")
        )
        trace = decision["proof_trace"]
        assert main(["obs-report", "--audit", audit, "--trace-id", trace]) == 0
        out = capsys.readouterr().out
        assert f"trace {trace}" in out
        assert "proof.signed" in out
        assert "proxy.decision" in out

    def test_unknown_trace_is_reported(self, exported, capsys):
        _, audit = exported
        assert main(["obs-report", "--audit", audit, "--trace-id", "proof-nope"]) == 0
        assert "no matching audit records" in capsys.readouterr().out

    def test_trace_query_requires_audit(self, capsys):
        assert main(["obs-report", "--trace-id", "proof-x"]) == 1

    def test_snapshot_required_without_trace(self, exported, capsys):
        _, audit = exported
        assert main(["obs-report", "--audit", audit]) == 1


class TestVerbosityFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args(["-v", "obs-report", "x.json"])
        assert args.verbose == 1
        args = build_parser().parse_args(["-q", "obs-report", "x.json"])
        assert args.quiet is True

    def test_verbosity_sets_root_level(self):
        from repro.cli import _configure_logging

        try:
            _configure_logging(verbosity=0, quiet=True)
            assert logging.getLogger().level == logging.ERROR
            _configure_logging(verbosity=0, quiet=False)
            assert logging.getLogger().level == logging.WARNING
            _configure_logging(verbosity=1, quiet=False)
            assert logging.getLogger().level == logging.INFO
            _configure_logging(verbosity=2, quiet=False)
            assert logging.getLogger().level == logging.DEBUG
        finally:
            logging.getLogger().setLevel(logging.WARNING)

    def test_package_root_has_null_handler(self):
        import repro

        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)
