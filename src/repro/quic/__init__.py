"""Transport substrate: TCP / QUIC latency models and the auth channel."""

from .channel import AuthChannel, AuthMessage, ChannelReceiver, DeliveryResult
from .transport import LAN_PATH, MOBILE_PATH, NetworkPath, Transport, connection_latency

__all__ = [
    "Transport",
    "NetworkPath",
    "LAN_PATH",
    "MOBILE_PATH",
    "connection_latency",
    "AuthChannel",
    "AuthMessage",
    "ChannelReceiver",
    "DeliveryResult",
]
