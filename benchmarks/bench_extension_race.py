"""Extension bench: event-driven proof-vs-command race (§6, end-to-end).

Where Table 7 compares component latencies, this bench simulates the
actual mechanism: the proxy holds manual-event packets until the
humanness proof validates.  Reports, per operation and scenario, the
proof's win rate and the latency FIAT *adds* to commands — zero in the
paper's deployment ("no noticeable impact on the user experience").
"""

from repro.core import (
    LAN_SCENARIO,
    MOBILE_SCENARIO,
    TABLE7_OPERATIONS,
    race_statistics,
)
from repro.quic import Transport

from benchmarks._helpers import print_table


def test_extension_latency_race(benchmark):
    stats_for = lambda op, scenario, **kw: race_statistics(op, scenario, n=80, seed=0, **kw)

    benchmark.pedantic(
        lambda: stats_for(TABLE7_OPERATIONS[0], LAN_SCENARIO), rounds=1, iterations=1
    )

    rows = []
    for operation in TABLE7_OPERATIONS:
        for scenario in (LAN_SCENARIO, MOBILE_SCENARIO):
            stats = stats_for(operation, scenario)
            rows.append(
                (
                    f"{operation.device} ({scenario.name})",
                    f"{stats['mean_command_ms']:.0f}",
                    f"{stats['mean_proof_ms']:.0f}",
                    f"{100 * stats['proof_win_rate']:.0f}%",
                    f"{stats['mean_hold_ms']:.1f}",
                    f"{100 * stats['completion_rate']:.0f}%",
                )
            )
            assert stats["proof_win_rate"] > 0.9
            assert stats["mean_hold_ms"] < 10.0
            assert stats["completion_rate"] == 1.0
    print_table(
        "Extension — proof-vs-command race (paper: FIAT adds no latency)",
        ("operation", "command ms", "proof ms", "proof wins", "added hold ms", "completed"),
        rows,
    )

    # §6 tolerance, end-to-end: +1.8 s survivable, +4 s breaks commands.
    tolerant = stats_for(
        TABLE7_OPERATIONS[1], LAN_SCENARIO, extra_validation_delay_s=1.8
    )
    broken = stats_for(
        TABLE7_OPERATIONS[1], LAN_SCENARIO, extra_validation_delay_s=4.0
    )
    print(
        f"tolerance: +1.8s -> completion {tolerant['completion_rate']:.2f}; "
        f"+4.0s -> completion {broken['completion_rate']:.2f} "
        "(paper: ~2 s TCP budget)"
    )
    assert tolerant["completion_rate"] > 0.95
    assert broken["completion_rate"] < 0.2

    # 1-RTT remains fast enough too (the paper's fallback channel).
    one_rtt = stats_for(
        TABLE7_OPERATIONS[2], MOBILE_SCENARIO, transport=Transport.QUIC_1RTT
    )
    assert one_rtt["completion_rate"] == 1.0
