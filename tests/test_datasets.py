"""Tests for the synthetic public-dataset generators (§2 corpora)."""

import numpy as np
import pytest

from repro.datasets import (
    SyntheticDeviceSpec,
    generate_corpus,
    generate_inspector,
    generate_moniotr_active,
    generate_moniotr_idle,
    generate_yourthings,
    inspector_device_predictability,
)
from repro.net import FlowDefinition
from repro.predictability import analyze_trace, max_predictable_intervals


class TestSpec:
    def test_random_spec_fields(self, rng):
        spec = SyntheticDeviceSpec.random("dev", rng)
        assert 3 <= spec.n_flows <= 12
        assert 0.0 <= spec.unpredictable_fraction <= 0.9
        assert spec.period_range[0] < spec.period_range[1]

    def test_noise_scale_shifts_fraction(self):
        rng = np.random.default_rng(0)
        low = [SyntheticDeviceSpec.random("d", rng, noise_scale=0.2).unpredictable_fraction
               for _ in range(50)]
        rng = np.random.default_rng(0)
        high = [SyntheticDeviceSpec.random("d", rng, noise_scale=3.0).unpredictable_fraction
                for _ in range(50)]
        assert np.mean(high) > np.mean(low)


class TestCorpus:
    @pytest.fixture(scope="class")
    def yourthings(self):
        return generate_yourthings(n_devices=12, duration_s=1500.0, seed=0)

    def test_device_count(self, yourthings):
        assert len(yourthings.devices()) == 12

    def test_yourthings_fig1b_shape(self, yourthings):
        report = analyze_trace(yourthings, FlowDefinition.PORTLESS)
        fractions = np.array(report.fractions())
        # Fig 1b: more than 80 % of traffic predictable for ~80 % of devices.
        assert np.mean(fractions > 0.8) >= 0.6

    def test_classic_below_portless(self, yourthings):
        portless = np.mean(analyze_trace(yourthings, FlowDefinition.PORTLESS).fractions())
        classic = np.mean(analyze_trace(yourthings, FlowDefinition.CLASSIC).fractions())
        assert classic <= portless

    def test_fig1c_interval_bounds(self, yourthings):
        intervals = max_predictable_intervals(yourthings)
        values = [v for v in intervals.values() if v > 0]
        # Fig 1c: max interval is bounded by ~10 minutes.
        assert max(values) < 1300.0

    def test_deterministic(self):
        a = generate_corpus(3, 300.0, seed=5)
        b = generate_corpus(3, 300.0, seed=5)
        assert a.packets == b.packets


class TestMonIoTr:
    def test_idle_more_predictable_than_active(self):
        idle = generate_moniotr_idle(n_devices=8, duration_s=900.0)
        active = generate_moniotr_active(n_devices=8, n_chunks=4)
        idle_frac = np.mean(analyze_trace(idle).fractions())
        active_frac = np.mean(analyze_trace(active).fractions())
        assert idle_frac > 0.85
        assert active_frac < idle_frac

    def test_active_is_chunked(self):
        active = generate_moniotr_active(n_devices=2, n_chunks=3, chunk_s=60.0)
        gaps = np.diff([p.timestamp for p in active.for_device(active.devices()[0])])
        assert gaps.max() > 1000.0  # hour-scale capture holes


class TestInspector:
    def test_windowed_predictability_per_device(self):
        trace = generate_inspector(n_devices=6, duration_s=600.0)
        result = inspector_device_predictability(trace)
        assert set(result) == set(trace.devices())
        assert all(0.0 <= v <= 1.0 for v in result.values())

    def test_median_device_band(self):
        # §2.2: half of Inspector devices exceed 85 % under PortLess —
        # we assert the softer invariant that the median stays high.
        trace = generate_inspector(n_devices=10, duration_s=900.0, seed=3)
        values = sorted(inspector_device_predictability(trace).values())
        assert values[len(values) // 2] > 0.5
