"""Extension bench: drift adaptation under a firmware update (§7).

A device firmware update replaces its heartbeat flows mid-deployment.
With the paper's frozen-at-bootstrap rules, every post-update packet of
the new flows is a rule miss (event-path load and false-positive
pressure forever).  With drift adaptation (periodic rule refresh + TTL
expiry) the proxy adopts the new flows within one refresh interval and
retires the dead rules.
"""

import numpy as np

from repro.core import FiatConfig, FiatProxy, HumanValidationService
from repro.crypto import pair
from repro.net import Direction, Packet
from repro.sensors import HumannessValidator

from benchmarks._helpers import print_table


def _heartbeats(sizes, start, end, period=12.0):
    packets = []
    for i, size in enumerate(sizes):
        for t in np.arange(start + i * 0.5, end, period):
            packets.append(
                Packet(
                    timestamp=float(t),
                    size=size,
                    src_ip="192.168.1.10",
                    dst_ip="172.9.9.9",
                    src_port=40000 + i,
                    dst_port=443,
                    protocol="tcp",
                    direction=Direction.OUTBOUND,
                    device="thermostat",
                )
            )
    return sorted(packets, key=lambda p: p.timestamp)


def _build(drift):
    _, proxy_ks = pair("phone", "proxy")
    return FiatProxy(
        config=FiatConfig(
            bootstrap_s=600.0,
            rule_refresh_s=600.0 if drift else None,
            rule_ttl_s=1800.0 if drift else None,
        ),
        dns=None,
        classifiers={},
        validation=HumanValidationService(
            proxy_ks, validator=HumannessValidator(n_train_per_class=60, seed=0).fit()
        ),
        app_for_device={},
    )


def test_extension_drift_adaptation(benchmark):
    # Old firmware: 3 heartbeat flows until t=3000; new firmware: 3
    # different flows from t=3000 to t=9000.
    old = _heartbeats([150, 210, 330], 0.0, 3000.0)
    new = _heartbeats([390, 470, 510], 3000.0, 9000.0)
    timeline = sorted(old + new, key=lambda p: p.timestamp)

    def run(drift):
        proxy = _build(drift)
        for packet in timeline:
            proxy.process(packet)
        # steady-state rule hit rate on fresh probes of the new flows
        probes = _heartbeats([390, 470, 510], 9000.0, 9120.0)
        hits = sum(proxy.rules.matches(p) for p in probes)
        return proxy, hits / len(probes), len(proxy.rules)

    proxy_frozen, frozen_rate, frozen_rules = run(False)
    proxy_drift, drift_rate, drift_rules = benchmark.pedantic(
        lambda: run(True), rounds=1, iterations=1
    )

    rows = [
        ("frozen rules (paper prototype)", f"{frozen_rate:.2f}", frozen_rules),
        ("drift adaptation (refresh+TTL)", f"{drift_rate:.2f}", drift_rules),
    ]
    print_table(
        "Extension — rule-table behaviour across a firmware update "
        "(steady-state hit rate on the NEW heartbeats)",
        ("mode", "new-flow hit rate", "rules in table"),
        rows,
    )

    assert frozen_rate < 0.5  # frozen: new flows stay unpredictable
    assert drift_rate > 0.9  # adaptive: adopted within a refresh
    # TTL expiry retired the dead firmware's rules
    assert drift_rules <= frozen_rules + 3
