"""Incremental unpredictable-event grouping.

Streaming counterpart of :func:`repro.events.grouping.group_events`:
instead of grouping a fully materialised trace in one pass, packets are
fed one at a time and events are emitted the moment they *close* — when
a later unpredictable packet of the same stream arrives more than
``gap`` seconds after the event's last packet.  Events still open when
the capture ends are surfaced by :meth:`IncrementalEventGrouper.flush`
(the batch pass closes them implicitly by running out of packets).

Equivalence contract: for any trace and mask, feeding the packets in
order and collecting ``emitted + flush()``, sorted by event start, gives
exactly the :func:`~repro.events.grouping.group_events` output — the
same packets in the same events.  Emission order differs from the batch
pass only in *when* an event becomes visible (batch sorts all events by
start at the end; the stream emits each event at close time, which for
interleaved devices is not globally start-ordered).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..events.grouping import EVENT_GAP_SECONDS, UnpredictableEvent
from ..net.packet import Packet

__all__ = ["IncrementalEventGrouper"]


class IncrementalEventGrouper:
    """Groups a stream of unpredictable packets into gap-separated events.

    Parameters
    ----------
    gap:
        Gap threshold in seconds closing an event (paper §3.2).
    per_device:
        When true (default), events never span devices — each device has
        its own open event; when false a single cross-device stream is
        grouped, mirroring ``group_events(per_device=False)``.
    """

    def __init__(self, gap: float = EVENT_GAP_SECONDS, per_device: bool = True) -> None:
        self.gap = gap
        self.per_device = per_device
        self._open: Dict[str, UnpredictableEvent] = {}

    @property
    def open_events(self) -> List[UnpredictableEvent]:
        """Currently open (not yet closed) events, in open order."""
        return list(self._open.values())

    def feed(self, packet: Packet) -> Optional[UnpredictableEvent]:
        """Add one *unpredictable* packet; return the event it closed, if any.

        Callers apply the predictability mask themselves (predictable
        packets never reach the grouper — see :meth:`feed_masked`).  A
        packet more than ``gap`` seconds after its stream's open event
        closes that event (returned) and opens a new one; otherwise it
        extends the open event and ``None`` is returned.
        """
        stream = packet.device if self.per_device else ""
        current = self._open.get(stream)
        if current is not None and packet.timestamp - current.end <= self.gap:
            current.packets.append(packet)
            return None
        self._open[stream] = UnpredictableEvent(packets=[packet])
        return current

    def feed_masked(self, packet: Packet, predictable: bool) -> Optional[UnpredictableEvent]:
        """:meth:`feed` gated on the packet's predictability flag."""
        if predictable:
            return None
        return self.feed(packet)

    def flush(self) -> List[UnpredictableEvent]:
        """Close and return all open events (end of capture), in start order."""
        remaining = sorted(self._open.values(), key=lambda e: e.start)
        self._open.clear()
        return remaining
