"""Unit tests for the Table-7 latency model and the Appendix-A math."""

import numpy as np
import pytest

from repro.core import (
    LAN_SCENARIO,
    MOBILE_SCENARIO,
    TABLE7_OPERATIONS,
    TCP_TOLERANCE_S,
    Recalls,
    command_impaired,
    false_negative,
    fp_blocked_manual,
    fp_blocked_non_manual,
    table6_error_columns,
    time_to_first_packet,
    validation_breakdown,
)
from repro.quic import Transport


class TestAppendixA:
    def test_echo_dot_4_row(self):
        """Reproduce Table 6's Echo Dot 4 error columns exactly."""
        assert fp_blocked_non_manual(0.985, 0.934) == pytest.approx(0.0140, abs=1e-4)
        assert fp_blocked_manual(0.98, 0.982) == pytest.approx(0.0176, abs=1e-4)
        assert false_negative(0.98, 0.982) == pytest.approx(0.0376, abs=1e-4)

    def test_e4_row(self):
        """E4 Mop Robot: FN = 5.72 % in Table 6."""
        assert false_negative(0.96, 0.982) == pytest.approx(0.0572, abs=1e-4)

    def test_perfect_classifier_perfect_validator(self):
        assert fp_blocked_non_manual(1.0, 1.0) == 0.0
        assert fp_blocked_manual(1.0, 1.0) == 0.0
        assert false_negative(1.0, 1.0) == 0.0

    def test_recalls_validation(self):
        with pytest.raises(ValueError):
            Recalls(manual=1.2, non_manual=1.0, human=1.0, non_human=1.0)

    def test_table6_columns_helper(self):
        columns = table6_error_columns(
            Recalls(manual=0.98, non_manual=0.985, human=0.934, non_human=0.982)
        )
        assert columns["fp_manual"] == pytest.approx(0.0140, abs=1e-4)
        assert columns["fp_non_manual"] == pytest.approx(0.0176, abs=1e-4)
        assert columns["false_negative"] == pytest.approx(0.0376, abs=1e-4)


class TestLatencyModel:
    def test_fiat_always_faster_lan(self, rng):
        """Table 7: validation beats time-to-first-packet by >74 % on LAN."""
        for operation in TABLE7_OPERATIONS:
            first = np.mean(
                [time_to_first_packet(operation, LAN_SCENARIO, rng) for _ in range(50)]
            )
            validation = np.mean(
                [
                    validation_breakdown(LAN_SCENARIO, Transport.QUIC_0RTT, rng)[
                        "time_to_validation"
                    ]
                    for _ in range(50)
                ]
            )
            assert validation < first * 0.3, operation.device

    def test_fiat_faster_mobile(self, rng):
        """Mobile: still >50 % faster than the command."""
        for operation in TABLE7_OPERATIONS:
            first = np.mean(
                [time_to_first_packet(operation, MOBILE_SCENARIO, rng) for _ in range(50)]
            )
            validation = np.mean(
                [
                    validation_breakdown(MOBILE_SCENARIO, Transport.QUIC_0RTT, rng)[
                        "time_to_validation"
                    ]
                    for _ in range(50)
                ]
            )
            assert validation < first * 0.5, operation.device

    def test_zero_rtt_beats_one_rtt(self, rng):
        zero = np.mean(
            [
                validation_breakdown(MOBILE_SCENARIO, Transport.QUIC_0RTT, rng)["transport"]
                for _ in range(100)
            ]
        )
        one = np.mean(
            [
                validation_breakdown(MOBILE_SCENARIO, Transport.QUIC_1RTT, rng)["transport"]
                for _ in range(100)
            ]
        )
        assert zero < one

    def test_component_magnitudes(self, rng):
        components = validation_breakdown(LAN_SCENARIO, Transport.QUIC_0RTT, rng)
        assert 30.0 < components["app_detection"] < 120.0
        assert 200.0 < components["sensor_sampling"] < 300.0
        assert 20.0 < components["secure_storage"] < 80.0
        assert components["ml_validation"] < 5.0

    def test_four_paper_operations(self):
        assert {op.device for op in TABLE7_OPERATIONS} == {
            "WyzeCam",
            "SP10",
            "EchoDot4",
            "HomeMini",
        }


class TestDelayTolerance:
    def test_two_second_threshold(self):
        assert not command_impaired(0.5)
        assert not command_impaired(TCP_TOLERANCE_S)
        assert command_impaired(2.5)
