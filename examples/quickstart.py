"""Quickstart: deploy FIAT over a simulated smart home in ~40 lines.

Builds a FIAT system for three devices, runs legitimate user operations
(with real human motion behind them), background events, and one
account-compromise attack — then prints the proxy's decision log.

Run:  python examples/quickstart.py
"""

from repro.core import FiatConfig, FiatSystem


def main() -> None:
    # A FIAT deployment: pairing, per-device classifiers (simple size
    # rules for the SP10 plug, BernoulliNB for the others), the
    # humanness validator and the IoT proxy — all wired together.
    system = FiatSystem(
        devices=["EchoDot4", "SP10", "WyzeCam"],
        config=FiatConfig(bootstrap_s=0.0),  # skip bootstrap for the demo
        seed=7,
    )

    # The Table-6 style experiment, miniaturised: 10 manual operations
    # per device, 20 background (control/automated) events, 10 attacks.
    results = system.run_accuracy(n_manual=10, n_non_manual=20, n_attacks=10)

    print("FIAT decisions per device")
    print("-" * 64)
    for device, row in results.items():
        print(
            f"{device:10s}  manual recall {row.manual_recall:5.2f}   "
            f"legit blocked {100 * (row.fp_manual_blocked + row.fp_non_manual_blocked):4.1f}%   "
            f"attacks let through {100 * row.false_negative:4.1f}%"
        )

    human = system.human_validation_rates()
    print(
        f"\nhumanness validation: human recall {human['human_recall']:.2f}, "
        f"non-human recall {human['non_human_recall']:.2f}"
    )

    blocked = [d for d in system.proxy.decisions if d.blocked]
    print(f"\nproxy log: {len(system.proxy.decisions)} unpredictable events, "
          f"{len(blocked)} blocked, {len(system.proxy.alerts)} user alerts")
    for alert in system.proxy.alerts[:5]:
        print(f"  ALERT t={alert.timestamp:8.1f}s {alert.device}: {alert.reason}")


if __name__ == "__main__":
    main()
