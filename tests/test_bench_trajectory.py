"""Tests for the committed perf trajectory: record, gate, render.

The trajectory subsystem (:mod:`repro.obs.trajectory` plus the
``tools/bench_track.py`` front-end) is the CI perf safety net, so the
tests drive the exact failure mode it exists for: a recorded history,
then a new entry with a synthetic regression, must trip the gate —
while an improvement or scheduler-noise drift inside tolerance must
not.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.obs.trajectory import (
    BASELINE_WINDOW,
    MetricSpec,
    TRACKED_METRICS,
    check_regression,
    collect_bench_headlines,
    flatten_headline,
    load_history,
    record_run,
    render_trend,
)

TOOL = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools", "bench_track.py")


def write_bench(bench_dir, bench, headline):
    os.makedirs(bench_dir, exist_ok=True)
    path = os.path.join(bench_dir, f"BENCH_{bench}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"bench": bench, "headline": headline, "metrics": {}}, handle)


def seed_history(path, values, metric="plain_packets_per_s", bench="proxy_throughput"):
    """One history entry per value, oldest first."""
    with open(path, "w", encoding="utf-8") as handle:
        for i, value in enumerate(values):
            entry = {
                "run": f"run-{i}",
                "recorded_at": f"2026-01-{i + 1:02d}T00:00:00Z",
                "benches": {bench: {metric: value}},
            }
            handle.write(json.dumps(entry) + "\n")


class TestFlatten:
    def test_nested_paths_and_skips(self):
        flat = flatten_headline(
            {
                "homes_per_sec": {"1": 12.5, "4": 40.0},
                "ok": True,  # bools are not metrics
                "label": "serial",  # nor strings
                "nan": float("nan"),  # nor non-finite values
                "n": 7,
            }
        )
        assert flat == {"homes_per_sec.1": 12.5, "homes_per_sec.4": 40.0, "n": 7.0}

    def test_tracked_metrics_reference_real_bench_names(self):
        """Every tracked bench matches a committed baseline artifact
        (or the proxy bench), so the gate can never rot silently."""
        baselines = os.path.join(
            os.path.dirname(TOOL), "..", "benchmarks", "baselines"
        )
        assert os.path.isdir(baselines)
        for bench in TRACKED_METRICS:
            assert bench  # sanity: names are non-empty strings


class TestMetricSpec:
    def test_higher_direction_gate(self):
        spec = MetricSpec("higher", 0.40)
        assert spec.limit(100.0) == pytest.approx(60.0)
        assert not spec.regressed(61.0, 100.0)
        assert spec.regressed(59.0, 100.0)
        assert not spec.regressed(150.0, 100.0)  # improvement

    def test_lower_direction_gate_with_floor(self):
        spec = MetricSpec("lower", 0.50, floor=0.08)
        # Baseline near zero: the floor keeps the gate meaningful.
        assert spec.limit(0.01) == pytest.approx(0.09)
        assert not spec.regressed(0.05, 0.01)
        assert spec.regressed(0.10, 0.01)


class TestRecordAndLoad:
    def test_record_round_trip(self, tmp_path):
        bench_dir = str(tmp_path / "bench")
        write_bench(bench_dir, "proxy_throughput", {"plain_packets_per_s": 5000.0})
        write_bench(bench_dir, "fleet_scaling", {"homes_per_sec": {"1": 2.0}})
        history = str(tmp_path / "history.jsonl")
        entry = record_run(bench_dir, history_path=history, run_id="r1", note="n")
        assert set(entry["benches"]) == {"proxy_throughput", "fleet_scaling"}
        loaded = load_history(history)
        assert len(loaded) == 1
        assert loaded[0]["run"] == "r1"
        assert loaded[0]["note"] == "n"
        assert loaded[0]["benches"]["fleet_scaling"]["homes_per_sec"]["1"] == 2.0

    def test_record_refuses_empty_bench_dir(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError):
            record_run(str(empty), history_path=str(tmp_path / "h.jsonl"))

    def test_collect_ignores_non_bench_files(self, tmp_path):
        bench_dir = str(tmp_path)
        write_bench(bench_dir, "x", {"v": 1.0})
        (tmp_path / "notes.txt").write_text("not a bench")
        (tmp_path / "BENCH_broken.json").write_text('{"bench": "b"}')  # no headline
        assert set(collect_bench_headlines(bench_dir)) == {"x"}

    def test_malformed_history_lines_skipped(self, tmp_path):
        history = tmp_path / "history.jsonl"
        history.write_text(
            '{"run": "ok", "benches": {"b": {"v": 1.0}}}\n'
            "{torn json\n"
            '"not a dict"\n'
            '{"run": "no-benches"}\n'
            '{"run": "ok2", "benches": {"b": {"v": 2.0}}}\n'
        )
        entries = load_history(str(history))
        assert [e["run"] for e in entries] == ["ok", "ok2"]

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []


class TestRegressionGate:
    def test_first_entry_establishes_not_regresses(self, tmp_path):
        history = str(tmp_path / "h.jsonl")
        seed_history(history, [5000.0])
        check = check_regression(load_history(history))
        assert check.ok
        assert check.n_checked == 0
        assert check.n_ungated == 1

    def test_steady_trajectory_passes(self, tmp_path):
        history = str(tmp_path / "h.jsonl")
        seed_history(history, [5000.0, 5200.0, 4900.0, 5100.0])
        assert check_regression(load_history(history)).ok

    def test_synthetic_regression_fails_the_gate(self, tmp_path):
        """The acceptance-criteria case: inject a 2x slowdown."""
        history = str(tmp_path / "h.jsonl")
        seed_history(history, [5000.0, 5100.0, 4900.0, 2400.0])
        check = check_regression(load_history(history))
        assert not check.ok
        (regression,) = check.regressions
        assert regression.bench == "proxy_throughput"
        assert regression.metric == "plain_packets_per_s"
        assert regression.baseline == pytest.approx(5000.0)
        assert "REGRESSION" in check.describe()

    def test_improvement_passes(self, tmp_path):
        history = str(tmp_path / "h.jsonl")
        seed_history(history, [5000.0, 5100.0, 20000.0])
        assert check_regression(load_history(history)).ok

    def test_lower_is_better_metric_regresses_upward(self, tmp_path):
        history = str(tmp_path / "h.jsonl")
        seed_history(
            history,
            [100.0, 110.0, 240.0],
            metric="peak_mb.10000",
            bench="fleet_bounded_memory",
        )
        # peak_mb.10000 is flattened from a nested headline in real
        # entries; seed_history writes it pre-flattened, so rebuild the
        # nesting the flattener expects.
        entries = []
        for value in (100.0, 110.0, 240.0):
            entries.append(
                {
                    "run": "r",
                    "benches": {
                        "fleet_bounded_memory": {"peak_mb": {"10000": value}}
                    },
                }
            )
        check = check_regression(entries)
        assert not check.ok
        assert check.regressions[0].metric == "peak_mb.10000"

    def test_baseline_is_median_of_recent_window(self, tmp_path):
        """One historic outlier must not poison the baseline."""
        values = [5000.0] * (BASELINE_WINDOW - 1) + [50000.0, 4800.0]
        history = str(tmp_path / "h.jsonl")
        seed_history(history, values)
        check = check_regression(load_history(history))
        assert check.ok  # median ignores the 50k spike

    def test_untracked_benches_ignored(self):
        entries = [
            {"run": "a", "benches": {"mystery_bench": {"v": 1.0}}},
            {"run": "b", "benches": {"mystery_bench": {"v": 100.0}}},
        ]
        check = check_regression(entries)
        assert check.ok and check.n_checked == 0


class TestTrendRendering:
    def test_empty_history_renders_hint(self):
        text = render_trend([])
        assert "no history" in text

    def test_trend_rows_and_regression_flag(self, tmp_path):
        history = str(tmp_path / "h.jsonl")
        seed_history(history, [5000.0, 5100.0, 2000.0])
        text = render_trend(load_history(history))
        assert "proxy_throughput:plain_packets_per_s" in text
        assert "<-- REGRESSION" in text
        assert "3 recorded runs" in text

    def test_new_metric_shows_as_new(self, tmp_path):
        history = str(tmp_path / "h.jsonl")
        seed_history(history, [5000.0])
        text = render_trend(load_history(history))
        assert "new" in text


class TestBenchTrackTool:
    """End-to-end through the committed tools/bench_track.py front-end."""

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, TOOL, *argv],
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_record_then_check_then_regress(self, tmp_path):
        history = str(tmp_path / "history.jsonl")
        good = str(tmp_path / "good")
        write_bench(good, "proxy_throughput", {"plain_packets_per_s": 5000.0})

        recorded = self._run("--history", history, "record", "--bench-dir", good)
        assert recorded.returncode == 0, recorded.stderr
        assert "proxy_throughput" in recorded.stdout

        # Gate the sole entry: nothing to compare against, passes.
        first = self._run("--history", history, "check")
        assert first.returncode == 0

        # A second identical run still passes.
        self._run("--history", history, "record", "--bench-dir", good)
        assert self._run("--history", history, "check").returncode == 0

        # The injected regression fails the gate with exit 1.
        bad = str(tmp_path / "bad")
        write_bench(bad, "proxy_throughput", {"plain_packets_per_s": 1500.0})
        gated = self._run("--history", history, "check", "--bench-dir", bad)
        assert gated.returncode == 1
        assert "REGRESSION" in gated.stdout

    def test_check_with_no_history_is_noop(self, tmp_path):
        result = self._run("--history", str(tmp_path / "none.jsonl"), "check")
        assert result.returncode == 0
        assert "nothing to gate" in result.stdout

    def test_report_renders(self, tmp_path):
        history = str(tmp_path / "history.jsonl")
        seed_history(history, [5000.0, 5100.0])
        result = self._run("--history", history, "report")
        assert result.returncode == 0
        assert "perf trajectory" in result.stdout
