"""Ablation: static vs dynamic routines (§3.2's deliberate exclusion).

The paper avoids predicting routine firings "to deal with dynamic
routines (e.g., depending on dynamic behaviors like 'at sunset')".
This bench quantifies why: a fixed-time daily routine's firing schedule
is perfectly repetitive (its intervals could be learned), while a
sunset-style jittered routine's inter-firing intervals essentially never
repeat — so schedule-level prediction would only ever cover the easy
half, for added complexity.
"""

from repro.testbed import DailyTrigger, JitteredDailyTrigger, PeriodicTrigger, Routine, RoutineSchedule
from repro.testbed.routines import DAY_SECONDS

from benchmarks._helpers import print_table

HORIZON = 14 * DAY_SECONDS


def test_ablation_dynamic_routines(benchmark):
    schedule = RoutineSchedule(
        [
            Routine("heat-at-6pm", "Nest-E", DailyTrigger(64800.0)),
            Routine("hourly-check", "WyzeCam", PeriodicTrigger(3600.0)),
            Routine("lights-at-sunset", "SP10", JitteredDailyTrigger(64800.0, jitter_s=900.0)),
            Routine("blinds-at-sunrise", "WP3", JitteredDailyTrigger(21600.0, jitter_s=1200.0)),
        ]
    )

    def repetitions():
        return {
            routine.name: schedule.interval_repetition(routine.name, HORIZON, seed=0)
            for routine in schedule.routines
        }

    results = benchmark.pedantic(repetitions, rounds=1, iterations=1)
    rows = [
        (name, "static" if "sunset" not in name and "sunrise" not in name else "dynamic",
         f"{value:.2f}")
        for name, value in results.items()
    ]
    print_table(
        "Ablation — routine-schedule interval repetition "
        "(paper: dynamic routines deliberately left unpredicted)",
        ("routine", "kind", "repeated-interval share"),
        rows,
    )

    assert results["heat-at-6pm"] == 1.0
    assert results["hourly-check"] == 1.0
    assert results["lights-at-sunset"] < 0.3
    assert results["blinds-at-sunrise"] < 0.3
