"""Durability costs: journal throughput, snapshot size, recovery replay.

Crash safety (ROADMAP: production middlebox) is only deployable if its
overheads fit an in-home proxy.  This bench measures the three costs the
`repro.recovery` subsystem adds:

* **journal append throughput** — the per-packet write-ahead record is
  on the fast path; buffered appends must stay far above IoT packet
  rates (tens of packets/s per household), and the per-proof fsync'd
  append must stay well under the proof transport latency;
* **snapshot cost** — bytes and latency of one atomic checkpoint of the
  full security state (predictor buckets, rules, replay cache, open
  events, breakers, validated interactions);
* **recovery replay time** — a restart re-applies the journal's valid
  prefix; the time to rebuild from snapshot + journal bounds the outage
  a crash adds on top of process respawn.

Run with ``pytest -s`` to see the tables.
"""

import json
import os
import shutil
import tempfile
import time

from repro.core import FiatConfig, FiatSystem
from repro.obs import write_bench_snapshot
from repro.recovery import JournalWriter, RecoveryManager, read_journal
from repro.recovery.chaos import build_chaos_workload

from benchmarks._helpers import bench_out_path, print_table

#: Rule devices: system construction stays cheap (no ML training) and
#: the costs under study — I/O and state size — do not depend on it.
DEVICES = ["SP10", "WP3"]


def _fresh_system():
    config = FiatConfig(
        bootstrap_s=60.0, snapshot_interval_s=20.0, lockout_threshold=10
    )
    return FiatSystem(DEVICES, config=config, seed=0)


def _journaled_run(system, ops, state_dir):
    """Journal + apply the whole workload; return the attached manager."""
    manager = RecoveryManager(
        state_dir, system.build_stack, snapshot_interval_s=1e9
    )
    proxy, validation = system.build_stack()
    manager.start(proxy, validation, now=0.0)
    for op in ops:
        if op.kind == "pkt":
            manager.journal_packet(op.packet)
            proxy.process(op.packet)
        elif op.kind == "auth":
            manager.journal_auth(op.wire, op.t)
            proxy.receive_auth(op.wire, op.t)
        else:
            manager.journal_unlock(op.device, op.t)
            proxy.unlock(op.device)
    return manager


def test_journal_append_throughput(benchmark):
    """Buffered vs per-record-fsync append rates for one packet record."""
    system = _fresh_system()
    ops = build_chaos_workload(system, duration_s=120.0, seed=0)
    record = {"k": "pkt", "p": next(op.packet for op in ops if op.kind == "pkt").to_dict()}
    root = tempfile.mkdtemp(prefix="fiat-bench-journal-")
    try:
        n_buffered = 20_000

        def buffered_run():
            path = os.path.join(root, "buffered.jsonl")
            if os.path.exists(path):
                os.unlink(path)
            writer = JournalWriter(path)
            t0 = time.perf_counter()
            for _ in range(n_buffered):
                writer.append(record)
            elapsed = time.perf_counter() - t0
            writer.close()
            return elapsed, writer.size_bytes

        buffered_s, journal_bytes = benchmark.pedantic(
            buffered_run, rounds=1, iterations=1
        )
        buffered_rate = n_buffered / buffered_s

        n_synced = 200
        writer = JournalWriter(os.path.join(root, "synced.jsonl"))
        t0 = time.perf_counter()
        for _ in range(n_synced):
            writer.append(record, sync=True)
        synced_s = time.perf_counter() - t0
        writer.close()
        synced_rate = n_synced / synced_s

        frame_bytes = journal_bytes / n_buffered
        print_table(
            "Recovery — write-ahead journal append cost (one packet record)",
            ("mode", "records", "records/s", "us/record", "frame bytes"),
            [
                ("buffered", n_buffered, f"{buffered_rate:,.0f}",
                 f"{1e6 / buffered_rate:.1f}", f"{frame_bytes:.0f}"),
                ("fsync per record", n_synced, f"{synced_rate:,.0f}",
                 f"{1e6 / synced_rate:.1f}", f"{frame_bytes:.0f}"),
            ],
        )

        # Everything written must read back intact.
        result = read_journal(os.path.join(root, "buffered.jsonl"))
        assert len(result.records) == n_buffered and not result.torn
        # Buffered appends must dwarf household packet rates (~100 pkt/s)
        # and the fsync'd path must stay under the LAN proof latency.
        assert buffered_rate > 10_000
        assert 1.0 / synced_rate < 0.25  # < 250 ms per durable proof record

        write_bench_snapshot(
            bench_out_path("BENCH_recovery_journal.json"),
            "journal_append",
            {
                "buffered_records_per_s": buffered_rate,
                "fsync_records_per_s": synced_rate,
                "frame_bytes": frame_bytes,
            },
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_snapshot_and_recovery_replay_cost(benchmark):
    """Checkpoint size/latency and restart replay rate on a warmed stack."""
    system = _fresh_system()
    ops = build_chaos_workload(system, duration_s=240.0, seed=0)
    root = tempfile.mkdtemp(prefix="fiat-bench-recover-")
    try:
        # One journaled run to measure checkpoint cost on warmed state...
        manager = _journaled_run(system, ops, os.path.join(root, "checkpoint"))
        t0 = time.perf_counter()
        manager.checkpoint(ops[-1].t)
        snapshot_s = time.perf_counter() - t0
        snapshot_bytes = os.path.getsize(
            os.path.join(root, "checkpoint", f"snapshot-{manager.epoch:06d}.json")
        )
        manager.close()

        # ...and a second that crashes with the full journal unsnapshotted,
        # so recover() replays every record (the worst-case restart).
        manager2 = _journaled_run(system, ops, os.path.join(root, "replay"))
        journal_bytes = manager2.journal_size_bytes
        manager2.simulate_crash()
        t0 = time.perf_counter()
        _proxy, _validation, report = benchmark.pedantic(
            lambda: manager2.recover(restart_t=ops[-1].t + 1.0),
            rounds=1,
            iterations=1,
        )
        recover_s = time.perf_counter() - t0
        manager2.close()

        state_bytes = len(
            json.dumps(system.proxy.snapshot(), sort_keys=True).encode("utf-8")
        )
        print_table(
            "Recovery — checkpoint and restart costs "
            f"({len(ops)} workload inputs, {len(DEVICES)} devices)",
            ("metric", "value"),
            [
                ("journal size", f"{journal_bytes / 1024:.1f} KiB"),
                ("snapshot write", f"{snapshot_s * 1e3:.2f} ms"),
                ("snapshot size", f"{snapshot_bytes / 1024:.1f} KiB"),
                ("records replayed", report.n_replayed),
                ("recovery time", f"{recover_s * 1e3:.1f} ms"),
                ("replay rate", f"{report.n_replayed / recover_s:,.0f} records/s"),
                ("idle proxy state", f"{state_bytes / 1024:.1f} KiB"),
            ],
        )

        assert report.n_replayed == len(ops)
        assert report.snapshot_epoch >= 1  # replay started from a snapshot
        # A restart must replay a four-minute household workload in well
        # under a second per simulated minute of journal.
        assert recover_s < 5.0

        write_bench_snapshot(
            bench_out_path("BENCH_recovery_replay.json"),
            "recovery_replay",
            {
                "n_replayed": report.n_replayed,
                "journal_bytes": journal_bytes,
                "snapshot_bytes": snapshot_bytes,
                "snapshot_write_s": snapshot_s,
                "recover_s": recover_s,
                "replay_records_per_s": report.n_replayed / recover_s,
            },
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
