"""Crypto substrate: TEE-like keystore, pairing, signing, replay protection."""

from .keystore import KeystoreError, SecureKeystore, SignedMessage, pair, payload_digest
from .replay import ReplayCache

__all__ = [
    "SecureKeystore",
    "SignedMessage",
    "KeystoreError",
    "pair",
    "payload_digest",
    "ReplayCache",
]
