"""YourThings-like corpus (paper §2.2, Fig 1b/1c).

The real YourThings dataset contains continuous captures from 65 IoT
devices over 10 days (106 GB).  The synthetic stand-in keeps the
properties the §2 analysis measures: per-device flow periodicity (most
flows recur within 5 minutes, none slower than 10 — Fig 1c), a moderate
unpredictable-noise mix such that >80 % of traffic is predictable for
~80 % of devices under PortLess (Fig 1b), and connection churn that
penalises the Classic flow definition.
"""

from __future__ import annotations

from ..net.trace import Trace
from .synthetic import generate_corpus

__all__ = ["generate_yourthings", "N_DEVICES", "CAPTURE_DAYS"]

#: Devices in the real dataset.
N_DEVICES = 65

#: Days of capture in the real dataset (we scale duration down; the
#: predictability fractions are stationary in capture length once past
#: ~2x the slowest flow period).
CAPTURE_DAYS = 10


def generate_yourthings(
    n_devices: int = N_DEVICES,
    duration_s: float = 2 * 3600.0,
    seed: int = 0,
) -> Trace:
    """Generate the YourThings-like corpus.

    ``duration_s`` defaults to two hours — more than 10x the slowest
    flow period (10 minutes), enough for every periodic flow to become
    predictable, mirroring the paper's conclusion that 20 minutes of
    capture suffice to learn all predictable traffic.
    """
    return generate_corpus(
        n_devices=n_devices,
        duration_s=duration_s,
        seed=seed,
        noise_scale=1.0,
        name="yourthings",
        max_period_s=600.0,  # Fig 1c: max interval 10 minutes
    )
