"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AuditLog, CycleError, DeviceInteractionGraph
from repro.core.mud import export_profile, import_profile
from repro.core.rules import RuleTable
from repro.net import FlowDefinition
from repro.ml import pad_sequences

node_names = st.sampled_from(list("abcdefgh"))
edges = st.lists(
    st.tuples(node_names, node_names).filter(lambda e: e[0] != e[1]),
    max_size=20,
)


class TestInteractionGraphProperties:
    @given(edges)
    def test_graph_stays_acyclic(self, edge_list):
        """No insertion order can sneak a cycle past add_edge."""
        graph = DeviceInteractionGraph()
        for controller, target in edge_list:
            try:
                graph.add_edge(controller, target)
            except CycleError:
                continue
        # topological_order succeeds iff the graph is acyclic
        order = graph.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for rule in graph.rules():
            assert position[rule.controller] < position[rule.target]

    @given(edges)
    def test_reachability_transitive(self, edge_list):
        graph = DeviceInteractionGraph()
        for controller, target in edge_list:
            try:
                graph.add_edge(controller, target)
            except CycleError:
                continue
        for rule in graph.rules():
            reachable = graph.reachable(rule.controller)
            assert rule.target in reachable
            # transitivity: everything reachable from the target too
            assert graph.reachable(rule.target) <= reachable


class TestAuditProperties:
    entries = st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            st.sampled_from(["decision", "alert", "validation"]),
            st.dictionaries(st.sampled_from(["device", "action", "x"]), st.text(max_size=8)),
        ),
        max_size=25,
    )

    @given(entries)
    def test_chain_always_verifies(self, records):
        log = AuditLog()
        for timestamp, kind, payload in records:
            log.append(timestamp, kind, payload)
        assert log.verify()

    @given(entries.filter(lambda r: len(r) >= 2), st.data())
    def test_any_single_tamper_detected(self, records, data):
        log = AuditLog()
        for timestamp, kind, payload in records:
            log.append(timestamp, kind, payload)
        index = data.draw(st.integers(min_value=0, max_value=len(records) - 1))
        log._entries[index].payload["__forged"] = "x"
        assert not log.verify()


class TestMudProperties:
    rule_keys = st.lists(
        st.tuples(
            st.sampled_from(["192.168.1.10", "192.168.1.11"]),
            st.sampled_from(["a.example.com", "b.example.com", "10.0.0.1"]),
            st.sampled_from(["in", "out"]),
            st.sampled_from(["tcp", "udp"]),
            st.integers(min_value=40, max_value=1500),
        ),
        max_size=15,
        unique=True,
    )

    @given(rule_keys, st.sets(st.integers(min_value=0, max_value=500), min_size=1, max_size=5))
    @settings(deadline=None)
    def test_profile_roundtrip_preserves_rules(self, keys, bins):
        table = RuleTable(FlowDefinition.PORTLESS, dns=None, resolution=0.25)
        for key in keys:
            table.add_rule(key, set(bins))
        restored = import_profile(export_profile("dev", table))["table"]
        assert len(restored) == len(table)
        for key in keys:
            assert restored._rules[key] == set(bins)


class TestPaddingProperties:
    @given(
        st.lists(
            st.integers(min_value=1, max_value=12), min_size=1, max_size=10
        )
    )
    def test_mask_sums_match_lengths(self, lengths):
        sequences = [np.ones((t, 3)) for t in lengths]
        padded, mask = pad_sequences(sequences)
        assert padded.shape == (len(lengths), max(lengths), 3)
        assert mask.sum(axis=1).tolist() == [float(t) for t in lengths]
