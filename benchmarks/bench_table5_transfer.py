"""Table 5: cross-location transferability of the event classifier.

Train on one location, test on another (US/JP/DE for EchoDot4, HomeMini
and WyzeCam).  The paper finds transfer F1 *at least as high* as the
within-location cross-validation — because the model never relied on
location-sensitive features (IPs), and the training sets are larger.
"""

import numpy as np

from repro import ml
from repro.features import event_labels, events_to_matrix

from benchmarks._helpers import print_table

DEVICES = ("EchoDot4", "HomeMini", "WyzeCam")
PAIRS = (("US", "JP"), ("US", "DE"), ("JP", "DE"))


def _fit_eval(estimator, X_train, y_train, X_test, y_test):
    scaler = ml.StandardScaler().fit(X_train)
    model = ml.clone(estimator).fit(scaler.transform(X_train), y_train)
    predictions = model.predict(scaler.transform(X_test))
    return ml.f1_score(y_test, predictions, "manual")


def test_table5_transfer(benchmark, labeled_event_sets):
    matrices = {
        key: (events_to_matrix(events), event_labels(events))
        for key, events in labeled_event_sets.items()
        if key[0] in DEVICES
    }

    def transfer(device, src, dst, estimator):
        X_train, y_train = matrices[(device, src)]
        X_test, y_test = matrices[(device, dst)]
        return _fit_eval(estimator, X_train, y_train, X_test, y_test)

    benchmark.pedantic(
        lambda: transfer("EchoDot4", "US", "JP", ml.BernoulliNB()), rounds=1, iterations=1
    )

    rows = []
    all_f1 = {"ncc": [], "bnb": []}
    for device in DEVICES:
        for src, dst in PAIRS:
            ncc = transfer(device, src, dst, ml.NearestCentroidClassifier("euclidean"))
            bnb = transfer(device, src, dst, ml.BernoulliNB())
            all_f1["ncc"].append(ncc)
            all_f1["bnb"].append(bnb)
            rows.append((device, f"{src}-{dst}", f"{ncc:.2f}", f"{bnb:.2f}"))
    print_table(
        "Table 5 — cross-location transfer F1 "
        "(paper: 0.93-0.99 NCC, 0.97-1.00 BernoulliNB)",
        ("device", "transfer", "NCC F1", "BNB F1"),
        rows,
    )

    # The knowledge transfers: high F1 across every location pair.
    assert min(all_f1["bnb"]) > 0.7
    assert np.mean(all_f1["bnb"]) > 0.85
    assert np.mean(all_f1["ncc"]) > 0.8
