"""Trace container: an ordered packet capture with ground-truth metadata.

A :class:`Trace` is the unit every analysis in the reproduction consumes:
the predictability engine (paper §2), the event layer (§3.2), the feature
extractor (§4.1) and the FIAT proxy (§5.4) all iterate packets in
timestamp order.  Traces serialise to JSON-lines so synthetic corpora can
be cached on disk.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .dns import DnsTable
from .packet import Packet, TrafficClass

__all__ = ["Trace", "TraceStats"]


class TraceStats:
    """Summary statistics of a trace (packets, bytes, per-class counts)."""

    def __init__(self, trace: "Trace") -> None:
        self.n_packets = len(trace)
        self.n_bytes = sum(p.size for p in trace)
        self.devices = sorted({p.device for p in trace if p.device})
        self.duration = trace.duration
        self.class_counts: Dict[str, int] = {}
        for packet in trace:
            key = packet.traffic_class.value
            self.class_counts[key] = self.class_counts.get(key, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceStats(packets={self.n_packets}, bytes={self.n_bytes}, "
            f"devices={len(self.devices)}, duration={self.duration:.1f}s, "
            f"classes={self.class_counts})"
        )


class Trace:
    """An immutable-by-convention, timestamp-sorted sequence of packets.

    Parameters
    ----------
    packets:
        Packets in any order; they are sorted by timestamp on construction.
    dns:
        DNS table observed alongside the capture, used by the PortLess
        flow definition.
    name:
        Optional label (e.g. ``"EchoDot4-US"``).
    """

    def __init__(
        self,
        packets: Iterable[Packet],
        dns: Optional[DnsTable] = None,
        name: str = "",
    ) -> None:
        self._packets: List[Packet] = sorted(packets, key=lambda p: p.timestamp)
        self.dns = dns or DnsTable()
        self.name = name

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def __getitem__(self, index: int) -> Packet:
        return self._packets[index]

    @property
    def packets(self) -> Tuple[Packet, ...]:
        """The packets, sorted by timestamp."""
        return tuple(self._packets)

    @property
    def start(self) -> float:
        """Timestamp of the first packet (0.0 for an empty trace)."""
        return self._packets[0].timestamp if self._packets else 0.0

    @property
    def end(self) -> float:
        """Timestamp of the last packet (0.0 for an empty trace)."""
        return self._packets[-1].timestamp if self._packets else 0.0

    @property
    def duration(self) -> float:
        """Capture span in seconds."""
        return self.end - self.start

    def stats(self) -> TraceStats:
        """Compute summary statistics."""
        return TraceStats(self)

    # -- transformations ----------------------------------------------------------

    def filter(self, predicate: Callable[[Packet], bool], name: str = "") -> "Trace":
        """New trace containing packets for which ``predicate`` holds."""
        return Trace(
            (p for p in self._packets if predicate(p)),
            dns=self.dns,
            name=name or self.name,
        )

    def for_device(self, device: str) -> "Trace":
        """New trace restricted to one device's traffic."""
        return self.filter(lambda p: p.device == device, name=f"{self.name}/{device}")

    def for_class(self, traffic_class: TrafficClass) -> "Trace":
        """New trace restricted to one ground-truth traffic class."""
        return self.filter(lambda p: p.traffic_class is traffic_class)

    def between(self, start: float, end: float) -> "Trace":
        """New trace with packets whose timestamp lies in ``[start, end)``."""
        return self.filter(lambda p: start <= p.timestamp < end)

    def merge(self, other: "Trace", name: str = "") -> "Trace":
        """Interleave two traces (packets re-sorted, DNS tables merged)."""
        return Trace(
            list(self._packets) + list(other.packets),
            dns=self.dns.merge(other.dns),
            name=name or self.name or other.name,
        )

    def devices(self) -> Tuple[str, ...]:
        """Sorted distinct device names present in the trace."""
        return tuple(sorted({p.device for p in self._packets if p.device}))

    # -- (de)serialisation --------------------------------------------------------

    def to_jsonl(self, path: str) -> None:
        """Write the trace as JSON-lines (one packet per line).

        The header line carries the trace name and the observed DNS
        records, so the PortLess flow definition survives a round trip.
        """
        with open(path, "w", encoding="utf-8") as handle:
            header = {"_trace": True, "name": self.name, "dns": self.dns.records()}
            handle.write(json.dumps(header) + "\n")
            for packet in self._packets:
                handle.write(json.dumps(packet.to_dict()) + "\n")

    @classmethod
    def from_jsonl(cls, path: str, dns: Optional[DnsTable] = None) -> "Trace":
        """Read a trace previously written by :meth:`to_jsonl`.

        An explicitly passed ``dns`` overrides the table stored in the
        file header.
        """
        packets: List[Packet] = []
        name = ""
        stored_dns: Optional[DnsTable] = None
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("_trace"):
                    name = record.get("name", "")
                    if record.get("dns"):
                        stored_dns = DnsTable(record["dns"].items())
                    continue
                packets.append(Packet.from_dict(record))
        return cls(packets, dns=dns if dns is not None else stored_dns, name=name)
