"""Recurrent sequence classifier (paper §7 future work).

The paper plans to "experiment with temporally-relevant models, e.g.,
LSTM, to handle the temporal variation in devices' behaviors".  This
module provides that extension: a compact Elman-style RNN classifier
over *per-packet feature sequences* (rather than the flattened 66-dim
vector), trained full-batch with Adam through backpropagation through
time.  Mean-pooling over hidden states keeps gradients stable at the
short sequence lengths FIAT sees (N <= 5 packets per decision).

The bench ``bench_extension_temporal.py`` compares it against the
deployed BernoulliNB on the same events.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from .base import Classifier

__all__ = ["SimpleRNNClassifier", "pad_sequences"]


def pad_sequences(sequences: Sequence[np.ndarray], max_len: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Stack variable-length ``(t_i, d)`` sequences into ``(n, T, d)``.

    Returns ``(padded, mask)`` where ``mask[i, t]`` is 1 for real steps.
    """
    if not sequences:
        raise ValueError("no sequences to pad")
    arrays = [np.atleast_2d(np.asarray(s, dtype=float)) for s in sequences]
    d = arrays[0].shape[1]
    if any(a.shape[1] != d for a in arrays):
        raise ValueError("sequences must share the feature dimension")
    T = max_len or max(a.shape[0] for a in arrays)
    n = len(arrays)
    padded = np.zeros((n, T, d))
    mask = np.zeros((n, T))
    for i, a in enumerate(arrays):
        t = min(T, a.shape[0])
        padded[i, :t] = a[:t]
        mask[i, :t] = 1.0
    return padded, mask


class SimpleRNNClassifier(Classifier):
    """Elman RNN over packet sequences with mean-pooled readout.

    ``fit``/``predict`` accept either a 3-D array ``(n, T, d)`` or a
    list of ``(t_i, d)`` arrays (padded internally).  Hidden state:
    ``h_t = tanh(x_t W_x + h_{t-1} W_h + b)``; the class logits read the
    mask-weighted mean of the hidden states.
    """

    def __init__(
        self,
        hidden_size: int = 32,
        learning_rate: float = 1e-2,
        n_epochs: int = 150,
        l2: float = 1e-4,
        seed: Optional[int] = 0,
    ) -> None:
        if hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        if n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.l2 = l2
        self.seed = seed
        self._params: Optional[dict] = None
        self._scale: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- data handling --------------------------------------------------------------

    def _coerce(self, X: Any) -> Tuple[np.ndarray, np.ndarray]:
        if isinstance(X, np.ndarray) and X.ndim == 3:
            mask = np.ones(X.shape[:2])
            return X.astype(float), mask
        return pad_sequences(list(X))

    def _standardise(self, X: np.ndarray, mask: np.ndarray, fit: bool) -> np.ndarray:
        flat = X[mask.astype(bool)]
        if fit:
            mean = flat.mean(axis=0)
            std = flat.std(axis=0)
            std[std == 0.0] = 1.0
            self._scale = (mean, std)
        assert self._scale is not None
        mean, std = self._scale
        out = (X - mean) / std
        return out * mask[:, :, None]

    # -- forward / backward -----------------------------------------------------------

    def _forward(self, X: np.ndarray, mask: np.ndarray):
        p = self._params
        n, T, _ = X.shape
        H = self.hidden_size
        hs = np.zeros((n, T + 1, H))
        for t in range(T):
            raw = X[:, t] @ p["Wx"] + hs[:, t] @ p["Wh"] + p["b"]
            h = np.tanh(raw)
            live = mask[:, t : t + 1]
            hs[:, t + 1] = live * h + (1.0 - live) * hs[:, t]
        counts = mask.sum(axis=1, keepdims=True)
        counts[counts == 0.0] = 1.0
        pooled = (hs[:, 1:] * mask[:, :, None]).sum(axis=1) / counts
        logits = pooled @ p["Wo"] + p["bo"]
        logits -= logits.max(axis=1, keepdims=True)
        expl = np.exp(logits)
        probs = expl / expl.sum(axis=1, keepdims=True)
        return hs, pooled, probs

    def fit(self, X: Any, y: Any) -> "SimpleRNNClassifier":
        """Train with full-batch Adam + BPTT."""
        X, mask = self._coerce(X)
        y = np.asarray(y)
        if len(y) != X.shape[0]:
            raise ValueError("X and y length mismatch")
        y_idx = self._store_classes(y)
        n_classes = len(self.classes_)
        X = self._standardise(X, mask, fit=True)
        n, T, d = X.shape
        H = self.hidden_size
        rng = np.random.default_rng(self.seed)
        self._params = {
            "Wx": rng.normal(0, 1.0 / np.sqrt(d), size=(d, H)),
            "Wh": rng.normal(0, 1.0 / np.sqrt(H), size=(H, H)),
            "b": np.zeros(H),
            "Wo": rng.normal(0, 1.0 / np.sqrt(H), size=(H, n_classes)),
            "bo": np.zeros(n_classes),
        }
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), y_idx] = 1.0
        adam = {k: (np.zeros_like(v), np.zeros_like(v)) for k, v in self._params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        counts = mask.sum(axis=1, keepdims=True)
        counts[counts == 0.0] = 1.0

        for epoch in range(1, self.n_epochs + 1):
            hs, pooled, probs = self._forward(X, mask)
            grads = {k: np.zeros_like(v) for k, v in self._params.items()}
            dlogits = (probs - onehot) / n
            grads["Wo"] = pooled.T @ dlogits + self.l2 * self._params["Wo"]
            grads["bo"] = dlogits.sum(axis=0)
            dpooled = dlogits @ self._params["Wo"].T
            dh_next = np.zeros((n, H))
            for t in range(T - 1, -1, -1):
                live = mask[:, t : t + 1]
                dh = dh_next + dpooled * live / counts
                h_t = hs[:, t + 1]
                draw = dh * (1.0 - h_t**2) * live
                grads["Wx"] += X[:, t].T @ draw
                grads["Wh"] += hs[:, t].T @ draw
                grads["b"] += draw.sum(axis=0)
                dh_next = draw @ self._params["Wh"].T + dh_next * (1.0 - live)
            grads["Wx"] += self.l2 * self._params["Wx"]
            grads["Wh"] += self.l2 * self._params["Wh"]
            for key, grad in grads.items():
                m, v = adam[key]
                m[:] = beta1 * m + (1 - beta1) * grad
                v[:] = beta2 * v + (1 - beta2) * grad**2
                m_hat = m / (1 - beta1**epoch)
                v_hat = v / (1 - beta2**epoch)
                self._params[key] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        """Class probabilities for sequences."""
        if self._params is None:
            raise RuntimeError("classifier must be fitted before predict")
        X, mask = self._coerce(X)
        X = self._standardise(X, mask, fit=False)
        _, _, probs = self._forward(X, mask)
        return probs

    def predict(self, X: Any) -> np.ndarray:
        """Hard class labels for sequences."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: Any, y: Any) -> float:
        """Mean accuracy on labelled sequences."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
