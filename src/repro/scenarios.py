"""Declarative scenario runner: JSON in, security report out.

Downstream users evaluate FIAT against *their* device mix and threat
assumptions.  A scenario document describes the deployment and the
timeline declaratively; :func:`run_scenario` builds the system, replays
the timeline and returns a structured report.  Scenarios are plain JSON
(see :data:`EXAMPLE_SCENARIO`):

```json
{
  "name": "evening-attack",
  "seed": 7,
  "devices": ["SP10", "EchoDot4"],
  "interactions": [{"controller": "EchoDot4", "target": "SP10"}],
  "timeline": [
    {"at": 100.0, "action": "user-command", "device": "SP10"},
    {"at": 200.0, "action": "background", "device": "EchoDot4",
     "class": "automated"},
    {"at": 300.0, "action": "attack", "device": "SP10",
     "attack": "account-compromise"},
    {"at": 400.0, "action": "attack", "device": "SP10",
     "attack": "spyware-sync"}
  ]
}
```

Supported actions: ``user-command`` (human interaction + proof + manual
traffic), ``background`` (control/automated event, no proof), ``attack``
(``account-compromise`` — no proof; ``spyware-still`` — still-phone
proof; ``spyware-sync`` — synchronized with a genuine interaction).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

import numpy as np

from .core import AuditLog, DeviceInteractionGraph, FiatConfig, FiatSystem, build_user_report
from .net.packet import TrafficClass
from .util import spawn_seed

__all__ = ["run_scenario", "ScenarioReport", "EXAMPLE_SCENARIO"]

#: A ready-to-run scenario document (also used by the tests).
EXAMPLE_SCENARIO: Dict[str, Any] = {
    "name": "evening-attack",
    "seed": 7,
    "devices": ["SP10", "EchoDot4"],
    "interactions": [],
    "timeline": [
        {"at": 100.0, "action": "user-command", "device": "SP10"},
        {"at": 200.0, "action": "background", "device": "EchoDot4", "class": "automated"},
        {"at": 300.0, "action": "attack", "device": "SP10", "attack": "account-compromise"},
        {"at": 400.0, "action": "user-command", "device": "EchoDot4"},
        {"at": 500.0, "action": "attack", "device": "SP10", "attack": "spyware-still"},
    ],
}


@dataclass
class ScenarioReport:
    """Outcome of one scenario run."""

    name: str
    #: one record per timeline entry: the entry plus {"executed": bool}
    outcomes: List[Dict[str, Any]] = field(default_factory=list)
    #: user-facing per-device digest from the audit log
    user_report: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: chained audit log of everything the proxy saw
    audit: Optional[AuditLog] = None
    alerts: List[str] = field(default_factory=list)

    @property
    def attacks_blocked(self) -> int:
        """Attacks from the timeline that did not execute."""
        return sum(
            1
            for o in self.outcomes
            if o["action"] == "attack" and not o["executed"]
        )

    @property
    def user_commands_executed(self) -> int:
        """Legitimate user commands that went through."""
        return sum(
            1
            for o in self.outcomes
            if o["action"] == "user-command" and o["executed"]
        )

    def to_json(self) -> str:
        """Serialise the report (without the raw audit chain)."""
        return json.dumps(
            {
                "name": self.name,
                "outcomes": self.outcomes,
                "user_report": self.user_report,
                "alerts": self.alerts,
                "attacks_blocked": self.attacks_blocked,
                "user_commands_executed": self.user_commands_executed,
            },
            indent=2,
            sort_keys=True,
        )


def _validate(document: Dict[str, Any]) -> None:
    if not document.get("devices"):
        raise ValueError("scenario needs at least one device")
    for entry in document.get("timeline", []):
        if entry.get("action") not in ("user-command", "background", "attack"):
            raise ValueError(f"unknown action {entry.get('action')!r}")
        if "at" not in entry or "device" not in entry:
            raise ValueError("timeline entries need 'at' and 'device'")


def run_scenario(
    document: Union[str, Dict[str, Any]],
    config: Optional[FiatConfig] = None,
) -> ScenarioReport:
    """Build a FIAT deployment and replay a scenario timeline."""
    if isinstance(document, str):
        document = json.loads(document)
    _validate(document)

    seed = int(document.get("seed", 0))
    system = FiatSystem(
        document["devices"],
        config=config or FiatConfig(bootstrap_s=0.0),
        seed=seed,
    )
    graph = DeviceInteractionGraph()
    for edge in document.get("interactions", []):
        graph.add_edge(
            edge["controller"], edge["target"], services=edge.get("services", ())
        )
    if len(graph):
        system.proxy.interactions = graph
        system.proxy.device_ips = {
            name: f"192.168.1.{10 + i}" for i, name in enumerate(document["devices"])
        }

    rng = np.random.default_rng(spawn_seed(seed, "timeline"))
    report = ScenarioReport(name=str(document.get("name", "scenario")))

    for entry in sorted(document.get("timeline", []), key=lambda e: e["at"]):
        when = float(entry["at"])
        device = str(entry["device"])
        action = entry["action"]
        event_seed = int(rng.integers(0, 2**31))

        if action == "user-command":
            system._send_proof(device, when - 0.5, human=True)
            packets = system._event_packets(
                system_profile(system, device), TrafficClass.MANUAL, when, event_seed
            )
        elif action == "background":
            cls = (
                TrafficClass.AUTOMATED
                if entry.get("class", "automated") == "automated"
                else TrafficClass.CONTROL
            )
            packets = system._event_packets(
                system_profile(system, device), cls, when, event_seed
            )
        else:  # attack
            kind = entry.get("attack", "account-compromise")
            if kind == "spyware-still":
                system._send_proof(device, when - 0.5, human=False)
            elif kind == "spyware-sync":
                system._send_proof(device, when - 0.5, human=True)
            elif kind != "account-compromise":
                raise ValueError(f"unknown attack kind {kind!r}")
            packets = system._event_packets(
                system_profile(system, device), TrafficClass.ATTACK, when, event_seed
            )

        allowed = [system.proxy.process(p) for p in packets]
        executed = all(allowed)
        report.outcomes.append({**entry, "executed": executed})
        system.proxy.unlock(device)
    system.proxy.flush()

    audit = AuditLog()
    audit.ingest_proxy(system.proxy)
    report.audit = audit
    report.user_report = build_user_report(audit)
    report.alerts = [f"{a.device}: {a.reason}" for a in system.proxy.alerts]
    return report


def system_profile(system: FiatSystem, device: str):
    """Look up a device's profile within a built system."""
    for profile in system.profiles:
        if profile.name == device:
            return profile
    raise KeyError(f"device {device!r} not part of the scenario's system")
