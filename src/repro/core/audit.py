"""Tamper-evident audit log and user reporting (paper §7).

The paper argues FIAT beats 2FA on *silent* failures because the proxy
"keeps logs of all the unpredictable events (regardless of whether they
are manual/non-manual or authenticated/unauthenticated)", protected by
the proxy's TEE; "reporting such logs to the users can effectively
relieve the concerns and allow the users to notice the silent false
negatives".

This module implements that future-work feature:

* :class:`AuditLog` — an append-only, hash-chained record of proxy
  decisions and validation events.  Each entry commits to its
  predecessor (a blockchain-style chain), so an attacker who can delete
  or rewrite records without the TEE key breaks verification.
* :func:`build_user_report` — the periodic digest the paper envisions:
  per-device activity counts, blocked events, and — crucially — *allowed
  manual events with no matching validated interaction*, the fingerprint
  of a silent false negative.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..crypto.keystore import SecureKeystore
from .proxy import EventDecision, FiatProxy

__all__ = ["AuditEntry", "AuditLog", "build_user_report"]

_GENESIS = "0" * 64


@dataclass(frozen=True)
class AuditEntry:
    """One chained log record."""

    index: int
    timestamp: float
    kind: str  # "decision" | "validation" | "alert"
    payload: Dict[str, Any]
    previous_hash: str
    entry_hash: str

    @staticmethod
    def compute_hash(index: int, timestamp: float, kind: str,
                     payload: Dict[str, Any], previous_hash: str) -> str:
        blob = json.dumps(
            {
                "index": index,
                "timestamp": timestamp,
                "kind": kind,
                "payload": payload,
                "previous_hash": previous_hash,
            },
            sort_keys=True,
            default=str,
        ).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


class AuditLog:
    """Append-only hash chain of proxy events, signable by the TEE key."""

    def __init__(self, keystore: Optional[SecureKeystore] = None,
                 key_alias: str = "fiat-pairing") -> None:
        self._entries: List[AuditEntry] = []
        self._keystore = keystore
        self._key_alias = key_alias

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def head_hash(self) -> str:
        """Hash of the latest entry (genesis constant when empty)."""
        return self._entries[-1].entry_hash if self._entries else _GENESIS

    # -- writing -------------------------------------------------------------------

    def append(self, timestamp: float, kind: str, payload: Dict[str, Any]) -> AuditEntry:
        """Append one record, chaining it to the current head."""
        index = len(self._entries)
        previous = self.head_hash
        entry_hash = AuditEntry.compute_hash(index, timestamp, kind, payload, previous)
        entry = AuditEntry(
            index=index,
            timestamp=timestamp,
            kind=kind,
            payload=dict(payload),
            previous_hash=previous,
            entry_hash=entry_hash,
        )
        self._entries.append(entry)
        return entry

    def record_decision(self, decision: EventDecision) -> AuditEntry:
        """Log one proxy event decision."""
        return self.append(
            decision.start,
            "decision",
            {
                "device": decision.device,
                "n_packets": decision.n_packets,
                "predicted_manual": decision.predicted_manual,
                "human_backed": decision.human_backed,
                "action": decision.action,
                "event_id": decision.event_id,
            },
        )

    def ingest_proxy(self, proxy: FiatProxy) -> int:
        """Log all proxy decisions and alerts not yet recorded.

        Returns the number of entries appended.  Idempotent across calls
        when the proxy's logs only grow (the normal case).
        """
        recorded_events = {
            (e.payload.get("event_id"), e.payload.get("device"))
            for e in self._entries
            if e.kind == "decision"
        }
        appended = 0
        for decision in proxy.decisions:
            key = (decision.event_id, decision.device)
            if key not in recorded_events:
                self.record_decision(decision)
                recorded_events.add(key)
                appended += 1
        recorded_alerts = {
            (e.payload.get("device"), e.timestamp)
            for e in self._entries
            if e.kind == "alert"
        }
        for alert in proxy.alerts:
            key = (alert.device, alert.timestamp)
            if key not in recorded_alerts:
                self.append(alert.timestamp, "alert",
                            {"device": alert.device, "reason": alert.reason})
                recorded_alerts.add(key)
                appended += 1
        return appended

    # -- integrity -----------------------------------------------------------------

    def verify(self) -> bool:
        """Re-compute the whole chain; ``False`` on any tampering."""
        previous = _GENESIS
        for i, entry in enumerate(self._entries):
            if entry.index != i or entry.previous_hash != previous:
                return False
            expected = AuditEntry.compute_hash(
                entry.index, entry.timestamp, entry.kind, entry.payload, previous
            )
            if expected != entry.entry_hash:
                return False
            previous = entry.entry_hash
        return True

    def attestation(self) -> Optional[bytes]:
        """TEE-signed commitment to the current head (None if no keystore)."""
        if self._keystore is None:
            return None
        payload = json.dumps(
            {"head": self.head_hash, "length": len(self._entries)}
        ).encode("utf-8")
        return self._keystore.sign(self._key_alias, payload).to_wire()


def build_user_report(log: AuditLog) -> Dict[str, Dict[str, Any]]:
    """Per-device digest for the user (the paper's §7 reporting feature).

    For each device: event counts by outcome, alerts, and the count of
    *suspicious allowed manual events* — manual-classified events that
    were allowed (human-backed at the time); a user who knows they were
    not at home can spot a silent false negative here.
    """
    report: Dict[str, Dict[str, Any]] = {}
    for entry in log:
        if entry.kind == "decision":
            device = entry.payload["device"]
            slot = report.setdefault(
                device,
                {
                    "events": 0,
                    "allowed": 0,
                    "blocked": 0,
                    "manual_allowed": 0,
                    "alerts": 0,
                    "first": entry.timestamp,
                    "last": entry.timestamp,
                },
            )
            slot["events"] += 1
            slot["first"] = min(slot["first"], entry.timestamp)
            slot["last"] = max(slot["last"], entry.timestamp)
            if entry.payload["action"] == "allow":
                slot["allowed"] += 1
                if entry.payload["predicted_manual"]:
                    slot["manual_allowed"] += 1
            else:
                slot["blocked"] += 1
        elif entry.kind == "alert":
            device = entry.payload["device"]
            slot = report.setdefault(
                device,
                {
                    "events": 0,
                    "allowed": 0,
                    "blocked": 0,
                    "manual_allowed": 0,
                    "alerts": 0,
                    "first": entry.timestamp,
                    "last": entry.timestamp,
                },
            )
            slot["alerts"] += 1
    return report
