"""Failure-injection tests: the system must degrade safely, not crash."""

import json

import numpy as np
import pytest

from repro.core import (
    FiatConfig,
    FiatProxy,
    FiatSystem,
    HumanValidationService,
    train_event_classifier,
)
from repro.crypto import ReplayCache, pair
from repro.faults import FaultPlan, OutageWindow
from repro.net import Direction, Packet, Trace, TrafficClass
from repro.predictability import label_predictable
from repro.sensors import HumannessValidator
from repro.testbed import profile_for
from tests.conftest import make_packet


def _proxy(bootstrap_s=0.0, lockout_threshold=3):
    _, proxy_ks = pair("phone", "proxy")
    return FiatProxy(
        config=FiatConfig(bootstrap_s=bootstrap_s, lockout_threshold=lockout_threshold),
        dns=None,
        classifiers={"SP10": train_event_classifier(profile_for("SP10"))},
        validation=HumanValidationService(
            proxy_ks, validator=HumannessValidator(n_train_per_class=60, seed=0).fit()
        ),
        app_for_device={},
    )


class TestMalformedInput:
    def test_garbage_auth_message(self):
        proxy = _proxy()
        proxy.receive_auth(b"\x00\xffgarbage", now=0.0)
        proxy.receive_auth(b"", now=1.0)
        proxy.receive_auth(b'{"payload": "zz"}', now=2.0)
        assert proxy.validation.n_rejected_channel == 3

    def test_truncated_json_auth(self):
        proxy = _proxy()
        proxy.receive_auth(b'{"payload": "00", "signature"', now=0.0)
        assert proxy.validation.n_rejected_channel == 1

    def test_empty_trace_flush(self):
        proxy = _proxy()
        proxy.flush()  # must not raise
        assert proxy.decisions == []


class TestTimingAnomalies:
    def test_identical_timestamps(self):
        packets = [make_packet(timestamp=5.0) for _ in range(10)]
        labels = label_predictable(Trace(packets))
        assert len(labels) == 10  # zero IATs handled (bin 0 repeats)

    def test_out_of_order_packets_to_proxy(self):
        """A slightly reordered feed must not crash the proxy."""
        proxy = _proxy()
        times = [10.0, 10.4, 10.2, 10.9, 10.7]
        for t in times:
            proxy.process(
                make_packet(timestamp=t, device="SP10", size=int(200 + t * 10))
            )
        proxy.flush()
        assert len(proxy.decisions) >= 1

    def test_event_spanning_bootstrap_boundary(self):
        proxy = _proxy(bootstrap_s=10.0)
        # packets at 9.9 (bootstrap) and 10.1 (enforcement)
        assert proxy.process(make_packet(timestamp=9.9, device="SP10", size=235))
        proxy.process(make_packet(timestamp=10.1, device="SP10", size=180))
        proxy.flush()
        # enforcement-side packet starts a fresh event; no crash, a decision exists
        assert len(proxy.decisions) == 1


class TestResourceExhaustion:
    def test_replay_cache_flood(self):
        cache = ReplayCache(window_seconds=1e9, max_entries=100)
        for i in range(10_000):
            cache.check_and_register(f"nonce-{i}", now=float(i))
        assert len(cache) <= 101

    def test_many_devices_many_events(self):
        proxy = _proxy()
        rng = np.random.default_rng(0)
        t = 0.0
        for i in range(300):
            device = f"ghost-{i % 20}"
            proxy.process(
                make_packet(
                    timestamp=t, device=device, size=int(rng.integers(100, 1400))
                )
            )
            t += 7.0
        proxy.flush()
        # unknown devices fail open but are all logged
        assert len(proxy.decisions) == 300


class TestAdversarialEdgeCases:
    def test_attacker_mimics_rule_size_still_needs_human(self):
        """Knowing the 235 B signature does not help without a proof."""
        proxy = _proxy()
        allowed = proxy.process(make_packet(timestamp=0.0, device="SP10", size=235))
        proxy.flush()
        assert not allowed

    def test_lockout_not_triggered_by_benign_traffic(self):
        proxy = _proxy()
        for i in range(10):
            proxy.process(
                make_packet(timestamp=float(i * 30), device="SP10", size=150 + i)
            )
        proxy.flush()
        assert not proxy.is_locked("SP10")

    def test_lockout_threshold_respected(self):
        proxy = _proxy(lockout_threshold=2)
        for i in range(2):
            proxy.process(make_packet(timestamp=float(i * 30), device="SP10", size=235))
        assert proxy.is_locked("SP10")

    def test_violations_outside_window_forgotten(self):
        proxy = _proxy(lockout_threshold=3)
        # three violations, but spread far beyond the lockout window
        for i in range(3):
            proxy.process(
                make_packet(timestamp=float(i * 1000), device="SP10", size=235)
            )
        assert not proxy.is_locked("SP10")

    def test_zero_size_packets(self):
        proxy = _proxy()
        proxy.process(make_packet(timestamp=0.0, device="SP10", size=0))
        proxy.flush()
        assert len(proxy.decisions) == 1

    def test_signed_but_malformed_payload_rejected_not_crash(self):
        """A valid signature over a garbage payload is a 'malformed' reject."""
        proxy = _proxy()
        phone_ks, _ = pair("phone2", "proxy2")
        # Re-pair the proxy's receiver so the signature verifies.
        _, proxy_ks = pair("phone", "proxy")
        receiver_ks = proxy.validation.receiver.keystore
        bad_payloads = [
            b'{"app_package": "a"}',  # missing keys
            b'{"app_package": "a", "device_id": "d", "sensor_features": ["x"],'
            b' "sent_at": 0.0, "nonce": "n"}',  # non-numeric feature
            b'{"app_package": "a", "device_id": "d", "sensor_features": null,'
            b' "sent_at": 0.0, "nonce": "n"}',  # null features
            b"[1, 2, 3]",  # not an object
            b'{"app_package": "a", "device_id": "d", "sensor_features": [1.0],'
            b' "sent_at": "never", "nonce": "n"}',  # non-numeric timestamp
        ]
        for payload in bad_payloads:
            wire = receiver_ks.sign("fiat-pairing", payload).to_wire()
            proxy.receive_auth(wire, now=0.0)
        assert proxy.validation.n_rejected_channel == len(bad_payloads)
        assert proxy.validation.receiver.rejections.count("malformed") == len(bad_payloads)


def _system(config=None, seed=0, devices=("SP10",)):
    """A small rule-device FIAT deployment (no ML training: fast + exact)."""
    return FiatSystem(
        list(devices), config=config or FiatConfig(bootstrap_s=0.0), seed=seed
    )


def _manual_decisions(system):
    return [
        d
        for d in system.proxy.decisions
        if d.event_id and "-manual-" in d.event_id
    ]


class TestResilientProofDelivery:
    """Retransmission over a lossy channel recovers manual authorizations."""

    def test_lossy_channel_recovers_authorizations(self):
        """30% proof loss: >= 95% of the lossless authorizations survive."""
        def run(plan):
            system = _system()
            system.run_accuracy(n_manual=40, n_non_manual=10, n_attacks=5, faults=plan)
            return system

        lossless = run(FaultPlan(seed=7))
        lossy = run(FaultPlan(seed=7, loss_rate=0.3))
        baseline = sum(not d.blocked for d in _manual_decisions(lossless))
        recovered = sum(not d.blocked for d in _manual_decisions(lossy))
        assert baseline > 0
        assert recovered >= 0.95 * baseline
        # the channel really was lossy, and retransmission really ran
        assert lossy._fault_link.n_lost > 0
        assert any(r.n_attempts > 1 for r in lossy.auth_reports)
        assert all(r.acked for r in lossy.auth_reports if r.n_attempts == 1)

    def test_retransmission_backoff_is_exponential_with_deadline(self):
        system = _system(
            config=FiatConfig(
                bootstrap_s=0.0,
                retry_initial_rto_ms=100.0,
                retry_backoff=2.0,
                retry_jitter_ms=0.0,
                retry_deadline_ms=1000.0,
            )
        )
        system.run_accuracy(n_manual=5, n_non_manual=0, n_attacks=0,
                            faults=FaultPlan(seed=0, loss_rate=1.0))
        for report in system.auth_reports:
            assert not report.acked
            gaps = np.diff(report.attempt_times)
            # gaps double: 0.1, 0.2, 0.4 — the next (0.8) lands past the deadline
            assert np.allclose(gaps, [0.1, 0.2, 0.4])
            assert report.attempt_times[-1] - report.attempt_times[0] <= 1.0

    def test_duplicates_and_corruption_do_not_double_count(self):
        plan = FaultPlan(seed=5, duplicate_rate=0.5, corruption_rate=0.2,
                         delay_jitter_ms=30.0)
        system = _system()
        system.run_accuracy(n_manual=20, n_non_manual=5, n_attacks=0, faults=plan)
        manual = _manual_decisions(system)
        # duplicates are absorbed by the replay cache, corruption by the
        # signature check; no crash, and most events still authorize
        assert sum(not d.blocked for d in manual) >= 0.9 * len(manual)
        rejections = system.validation.receiver.rejections
        if system._fault_link.n_duplicated:
            assert "replay" in rejections
        if system._fault_link.n_corrupted:
            assert any(r in ("malformed", "bad-signature") for r in rejections)

    def test_clock_skew_defeats_freshness_then_retry_gives_up(self):
        """Skew beyond the freshness window rejects every honest proof."""
        plan = FaultPlan(seed=0, clock_skew_s=120.0)
        system = _system()
        system.run_accuracy(n_manual=10, n_non_manual=0, n_attacks=0, faults=plan)
        assert all(not r.acked for r in system.auth_reports)
        assert "stale" in system.validation.receiver.rejections
        assert all(d.blocked for d in _manual_decisions(system))


class TestRetryDeterminism:
    """Same seed + same fault plan => identical schedules and decisions."""

    def test_decision_log_byte_identical(self):
        def run():
            system = _system()
            system.run_accuracy(
                n_manual=10, n_non_manual=6, n_attacks=4,
                faults=FaultPlan(seed=11, loss_rate=0.3, duplicate_rate=0.1,
                                 corruption_rate=0.05, delay_jitter_ms=20.0),
            )
            return system

        a, b = run(), run()
        assert a.proxy.decision_log() == b.proxy.decision_log()
        # decision_log is canonical JSON, parseable and field-stable
        log = json.loads(a.proxy.decision_log())
        assert all("degraded" in entry for entry in log)

    def test_retransmission_schedule_reproducible(self):
        def schedules():
            system = _system()
            system.run_accuracy(n_manual=12, n_non_manual=0, n_attacks=0,
                                faults=FaultPlan(seed=3, loss_rate=0.4))
            return [tuple(r.attempt_times) for r in system.auth_reports]

        assert schedules() == schedules()

    def test_different_seed_different_schedule(self):
        def run(seed):
            system = _system()
            system.run_accuracy(n_manual=12, n_non_manual=0, n_attacks=0,
                                faults=FaultPlan(seed=seed, loss_rate=0.4))
            return [tuple(r.attempt_times) for r in system.auth_reports]

        assert run(3) != run(4)


class TestDegradedModes:
    """Component outages: circuit breakers + configurable degraded policy."""

    def test_validation_outage_fails_closed_and_recovers(self):
        plan = FaultPlan(seed=1, outages=(OutageWindow("validation", 200.0, 400.0),))
        system = _system(config=FiatConfig(bootstrap_s=0.0, breaker_recovery_s=20.0))
        system.run_accuracy(n_manual=30, n_non_manual=5, n_attacks=0, faults=plan)
        manual = _manual_decisions(system)
        during = [d for d in manual if 200.0 <= d.start < 400.0]
        after = [d for d in manual if d.start >= 430.0]
        # fail-closed: no unauthenticated manual traffic during the outage
        assert during and all(d.blocked for d in during)
        assert all(d.degraded == "validation-outage:fail-closed" for d in during)
        # health alerts fired, and none of the degraded drops locked the device
        health = [a for a in system.proxy.alerts if a.kind == "health"]
        assert any("circuit opened" in a.reason for a in health)
        assert any("fail-closed" in a.reason for a in health)
        assert not system.proxy.is_locked("SP10")
        # automatic recovery once the breaker's probe succeeds
        assert after and all(not d.blocked for d in after)
        assert any("recovered" in a.reason for a in health)
        assert system.proxy.health["degraded_decisions"] == len(during)

    def test_validation_outage_fail_open_policy(self):
        plan = FaultPlan(seed=1, outages=(OutageWindow("validation", 200.0, 400.0),))
        system = _system(
            config=FiatConfig(
                bootstrap_s=0.0,
                breaker_recovery_s=20.0,
                validation_outage_policy="fail-open",
            )
        )
        system.run_accuracy(n_manual=20, n_non_manual=0, n_attacks=0, faults=plan)
        during = [d for d in _manual_decisions(system) if 200.0 <= d.start < 400.0]
        assert during and all(not d.blocked for d in during)
        assert all(d.degraded == "validation-outage:fail-open" for d in during)

    def test_classifier_outage_rule_only_fallback(self):
        """A broken classifier leaves rules: unpredictable => needs a proof."""
        plan = FaultPlan(seed=1, outages=(OutageWindow("classifier:SP10", 100.0, 500.0),))
        system = _system(config=FiatConfig(bootstrap_s=0.0, breaker_recovery_s=30.0))
        system.run_accuracy(n_manual=10, n_non_manual=10, n_attacks=0, faults=plan)
        degraded = [d for d in system.proxy.decisions
                    if d.degraded and d.degraded.startswith("classifier-fallback")]
        assert degraded
        # assume-manual: events with a fresh proof pass, the rest drop
        manual_deg = [d for d in degraded if d.event_id and "-manual-" in d.event_id]
        nonman_deg = [d for d in degraded if d.event_id and (
            "-automated-" in d.event_id or "-control-" in d.event_id)]
        # humanness validation still has its intrinsic false-reject rate
        # (low-intensity touches), so demand "most", not "all"
        assert manual_deg
        assert sum(not d.blocked for d in manual_deg) >= 0.8 * len(manual_deg)
        assert all(d.human_backed is False for d in manual_deg if d.blocked)
        # non-manual events drop unless a recent proof still covers them
        # (a manual proof's 60 s validity can bleed into the next event)
        assert nonman_deg
        assert all(d.blocked for d in nonman_deg if not d.human_backed)
        assert any(d.blocked for d in nonman_deg)
        assert system.proxy.health["classifier_errors"] > 0

    def test_classifier_fallback_allow_policy(self):
        plan = FaultPlan(seed=1, outages=(OutageWindow("classifier:SP10", 100.0, 500.0),))
        system = _system(
            config=FiatConfig(bootstrap_s=0.0, classifier_fallback="allow")
        )
        system.run_accuracy(n_manual=5, n_non_manual=10, n_attacks=0, faults=plan)
        degraded = [d for d in system.proxy.decisions
                    if d.degraded == "classifier-fallback:allow"]
        assert degraded and all(not d.blocked for d in degraded)

    def test_sensor_dropout_blocks_manual_but_never_crashes(self):
        plan = FaultPlan(seed=2, sensor_dropout_rate=1.0)
        system = _system()
        system.run_accuracy(n_manual=10, n_non_manual=0, n_attacks=0, faults=plan)
        manual = _manual_decisions(system)
        # still-phone windows fail the humanness check: manual is blocked,
        # modulo the validator's small still-window false-positive rate
        # (§5) — one FP's 60 s validity can also cover the next event
        assert manual
        blocked = sum(d.blocked for d in manual)
        assert blocked > len(manual) / 2
        assert system.human_confusion["tp"] == 0  # no genuine proof ever sent
        assert 2 * system.human_confusion["fp"] >= len(manual) - blocked
        assert all(r.acked for r in system.auth_reports)

    def test_config_policy_validation(self):
        with pytest.raises(ValueError):
            FiatConfig(validation_outage_policy="panic")
        with pytest.raises(ValueError):
            FiatConfig(classifier_fallback="guess")
