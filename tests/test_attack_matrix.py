"""End-to-end threat-model matrix: every §5.1/§7 attacker vs FIAT."""

import numpy as np
import pytest

from repro.core import FiatConfig, FiatSystem
from repro.testbed import (
    AccountCompromiseAttack,
    BruteForceAttack,
    ReplayAttack,
    SpywareSyncAttack,
)

DEVICE = "SP10"  # rule device: classification is deterministic


@pytest.fixture
def system():
    return FiatSystem([DEVICE], config=FiatConfig(bootstrap_s=0.0), seed=21)


def _run(system, packets):
    allowed = [system.proxy.process(p) for p in packets]
    system.proxy.flush()
    return all(allowed)


class TestAccountCompromise:
    def test_blocked_without_any_proof(self, system):
        attack = AccountCompromiseAttack(system.cloud, seed=1)
        for i in range(5):
            event = attack.launch(DEVICE, start=100.0 + 40.0 * i)
            assert not _run(system, event.packets)
            system.proxy.unlock(DEVICE)

    def test_alerts_generated(self, system):
        attack = AccountCompromiseAttack(system.cloud, seed=1)
        _run(system, attack.launch(DEVICE, start=100.0).packets)
        assert system.proxy.alerts


class TestReplay:
    def test_replayed_proof_rejected(self, system):
        # Capture a genuine proof...
        interaction = system.phone.interact(DEVICE, 50.0, human=True, intensity=1.2)
        attempt = system.app.authenticate(interaction, now=50.0)
        system.proxy.receive_auth(attempt.wire, now=50.1)
        # ...the original command goes through:
        attack = ReplayAttack(system.cloud, seed=2)
        genuine = attack.launch(DEVICE, start=51.0)
        assert _run(system, genuine.packets)
        # Much later, the attacker replays the captured wire:
        system.proxy.receive_auth(attempt.wire, now=400.0)
        replayed = attack.launch_with_wire(DEVICE, 401.0, attempt.wire)
        assert not _run(system, replayed.packets)
        assert "replay" in system.validation.receiver.rejections or (
            "stale" in system.validation.receiver.rejections
        )

    def test_immediate_replay_also_rejected(self, system):
        """Replay inside the freshness window is caught by the nonce cache."""
        interaction = system.phone.interact(DEVICE, 50.0, human=True, intensity=1.2)
        attempt = system.app.authenticate(interaction, now=50.0)
        assert system.validation.ingest(attempt.wire, now=50.1) is not None
        assert system.validation.ingest(attempt.wire, now=50.5) is None
        assert "replay" in system.validation.receiver.rejections


class TestBruteForce:
    def test_lockout_engages(self, system):
        attack = BruteForceAttack(system.cloud, seed=3)
        for event in attack.launch_burst(DEVICE, start=100.0, attempts=5, gap_s=20.0):
            _run(system, event.packets)
        assert system.proxy.is_locked(DEVICE)

    def test_lockout_blocks_even_rule_hits(self, system):
        attack = BruteForceAttack(system.cloud, seed=3)
        for event in attack.launch_burst(DEVICE, start=100.0, attempts=5, gap_s=20.0):
            _run(system, event.packets)
        # even an otherwise-fine control packet is now dropped
        from tests.conftest import make_packet

        assert not system.proxy.process(make_packet(timestamp=300.0, device=DEVICE))


class TestSpywarePiggyback:
    def test_succeeds_when_synchronized(self, system):
        """The §7 residual risk, reproduced end-to-end."""
        when = 100.0
        interaction = system.phone.interact(DEVICE, when - 0.5, human=True, intensity=1.2)
        attempt = system.app.authenticate(interaction, now=when - 0.5)
        system.proxy.receive_auth(attempt.wire, now=when - 0.4)
        attack = SpywareSyncAttack(system.cloud, seed=4)
        event = attack.launch(DEVICE, start=when)
        assert event.synchronized_with_user
        assert _run(system, event.packets)  # piggybacks on the real human

    def test_fails_outside_validity_window(self, system):
        interaction = system.phone.interact(DEVICE, 100.0, human=True, intensity=1.2)
        attempt = system.app.authenticate(interaction, now=100.0)
        system.proxy.receive_auth(attempt.wire, now=100.1)
        attack = SpywareSyncAttack(system.cloud, seed=4)
        # the attacker waits too long: the proof has expired
        event = attack.launch(DEVICE, start=100.1 + system.config.human_validity_s + 5.0)
        assert not _run(system, event.packets)

    def test_still_phone_spyware_fails(self, system):
        """Spyware that forwards sensor data from an untouched phone."""
        when = 100.0
        interaction = system.phone.interact(DEVICE, when - 0.5, human=False)
        attempt = system.app.authenticate(interaction, now=when - 0.5)
        system.proxy.receive_auth(attempt.wire, now=when - 0.4)
        attack = SpywareSyncAttack(system.cloud, seed=5)
        assert not _run(system, attack.launch(DEVICE, start=when).packets)
