"""Distributed fleet: a fault-tolerant multi-machine coordinator.

Scales a fleet run across N "machines" — subprocesses each running the
existing :class:`~repro.fleet.runner.FleetRunner` over one contiguous
home-range — while keeping the single-machine determinism contract:
the final :class:`~repro.fleet.aggregate.FleetReport` is byte-identical
to a ``--jobs N`` run on one machine, regardless of machine count,
failures, or the order ranges are reassigned and folded.

The interesting part is not the fan-out but surviving it:

Leases and epoch fencing
    Every range is owned by at most one *lease epoch* at a time.  The
    coordinator journals the lease before spawning the machine, watches
    the machine's telemetry frames (heartbeats plus the runner's own
    progress frames) and revokes the lease when the machine exits
    without submitting, or goes quiet past ``lease_timeout_s``.
    Revocation never kills the old machine — a partitioned box cannot
    be reached anyway — it bumps the epoch and re-leases after a
    seeded backoff (:func:`repro.util.spawn_seed`, no wall-clock
    randomness).  Every file a machine writes is namespaced by its
    epoch, so a zombie that wakes up after revocation can only write
    beside the new owner, never under it, and its late submission is
    rejected and counted, never folded.

Per-machine checkpoints
    A machine appends every finished home to a CRC32-framed results
    journal (flushed per record) *before* anything else sees the
    result.  A re-leased machine unions the journals of every prior
    epoch, verifies each record's digest, and resumes from the first
    uncovered home — work done by a crashed or zombie machine is never
    re-run, and conflicting records for the same home fail closed
    (:class:`SubmissionMismatch`), since a correct machine is a pure
    function of the spec.

The coordinator ledger
    All coordination state (leases, revocations, accepted and rejected
    submissions, folded ranges) lives in ``coordinator.journal``, the
    same CRC32 framing as :mod:`repro.recovery.journal`, with rotating
    aggregator snapshots beside it.  SIGKILL the coordinator at any
    point and ``resume=True`` reconstructs exactly: completed ranges
    are not re-run, in-flight leases are adopted (their machines keep
    running as orphans and their submissions are still accepted), and
    the fold order — spec order, range by range — is replayed
    bit-identically.

Exact merge
    Each machine ships its range's metrics as a serialized
    :class:`~repro.obs.mergetree.SnapshotMergeTree`; the coordinator
    absorbs the subtrees in spec order and re-folds the raw results for
    rows/reservoirs/counts (see
    :meth:`~repro.fleet.aggregate.FleetAggregator.absorb_range`).
    Because the accumulator merge is exact, tree shape cannot leak into
    the report bytes.
"""

from __future__ import annotations

import json
import logging
import os
import random
import shutil
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..faults.plan import MachineFault
from ..obs.mergetree import SnapshotMergeTree
from ..recovery.journal import JournalWriter, read_journal
from ..recovery.snapshot import read_snapshot, write_snapshot
from ..util import spawn_seed
from .aggregate import FleetAggregator, FleetReport
from .checkpoint import CheckpointMismatch, result_digest
from .runner import KILL_AFTER_ENV, FleetRunner
from .spec import FleetSpec, HomeSpec, JsonlSpecStream, SpecStream, open_spec, write_spec_jsonl
from .telemetry import TelemetryWriter, load_frames
from .worker import HomeResult

__all__ = [
    "DistribCoordinator",
    "DistribError",
    "SubmissionMismatch",
    "RangeSpecStream",
    "partition_ranges",
    "machine_seed",
    "lease_backoff_s",
    "lease_expired",
    "submission_disposition",
    "read_range_results",
    "covered_prefix",
    "newest_frame_t",
    "machine_telemetry_dirs",
    "parse_machine_fault",
    "run_machine",
    "merge_range_dirs",
    "KILL_AFTER_RANGES_ENV",
    "MACHINE_CHANNEL",
    "LEDGER_NAME",
]

logger = logging.getLogger(__name__)

#: Set to ``N`` to SIGKILL the *coordinator* after folding N ranges this
#: run — the crash-injection hook for resume smoke tests (the machine
#: counterpart is the runner's ``FIAT_FLEET_KILL_AFTER``).  Both are
#: stripped from machine subprocess environments.
KILL_AFTER_RANGES_ENV = "FIAT_DISTRIB_KILL_AFTER"

#: Telemetry channel the machine wrapper's heartbeat thread writes to
#: (beside the runner's ``run.jsonl`` in the same per-epoch dir).
MACHINE_CHANNEL = "machine.jsonl"

#: The coordinator's write-ahead ledger file, under the state dir.
LEDGER_NAME = "coordinator.journal"

#: The materialised spec copy machines read, under the state dir.
SPEC_COPY_NAME = "spec.jsonl"

LEDGER_FORMAT = 1
SUBMIT_FORMAT = 1
PAYLOAD_FORMAT = 1

#: Coordinator aggregator snapshots kept on disk (rotating).
KEEP_SNAPSHOTS = 2


class DistribError(RuntimeError):
    """A distributed run cannot proceed (e.g. a range exhausted its leases)."""


class SubmissionMismatch(CheckpointMismatch):
    """A range submission or results log fails a fail-closed check."""


# -- pure helpers ----------------------------------------------------------------


def partition_ranges(n_homes: int, n_machines: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``[0, n_homes)`` into contiguous per-machine ranges.

    Pure and stable: the same inputs always produce the same cover
    (resume re-derives identical ranges), the ranges are disjoint, in
    spec order, non-empty, tile ``[0, n_homes)`` exactly, and sizes
    differ by at most one.  At most ``min(n_machines, n_homes)`` ranges
    are produced — a machine never owns an empty range.
    """
    if n_homes < 0:
        raise ValueError(f"n_homes must be >= 0, got {n_homes}")
    if n_machines < 1:
        raise ValueError(f"n_machines must be >= 1, got {n_machines}")
    n_ranges = min(n_machines, n_homes)
    if n_ranges == 0:
        return ()
    base, extra = divmod(n_homes, n_ranges)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(n_ranges):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return tuple(ranges)


def machine_seed(fleet_seed: int, range_index: int, epoch: int) -> int:
    """The seed for one machine process's operational randomness.

    Derived with :func:`repro.util.spawn_seed` so machines never share
    streams and resume re-derives the same value.  Operational only
    (heartbeat phase jitter): workload randomness lives in each
    :class:`HomeSpec`'s own seed, which is what keeps the report
    byte-identical across machine counts.
    """
    return spawn_seed(fleet_seed, "machine", range_index, epoch)


def lease_backoff_s(
    fleet_seed: int,
    range_index: int,
    epoch: int,
    base_s: float = 0.2,
    max_s: float = 2.0,
) -> float:
    """Seeded exponential backoff before granting lease ``epoch``.

    Same discipline as the runner's retry backoff: the jitter draw is
    keyed by ``(seed, "lease", range, epoch)``, so a resumed
    coordinator re-derives the identical delay.
    """
    jitter = random.Random(spawn_seed(fleet_seed, "lease", range_index, epoch)).random()
    delay = min(max_s, base_s * (2 ** max(0, epoch - 2)))
    return delay * (0.5 + jitter)


def lease_expired(
    granted_at: float,
    newest_frame_t: Optional[float],
    lease_timeout_s: float,
    now: float,
) -> bool:
    """Whether a lease has gone quiet past its timeout.

    Liveness is the newest telemetry frame of the lease's own epoch,
    floored at the grant time (a freshly spawned machine gets the full
    timeout to produce its first frame).  The comparison is strictly
    greater-than: a heartbeat landing *exactly* at the deadline keeps
    the lease.
    """
    alive = granted_at if newest_frame_t is None else max(granted_at, newest_frame_t)
    return (now - alive) > lease_timeout_s


def submission_disposition(
    epoch: int,
    granted_epoch: Optional[int],
    accepted_epoch: Optional[int],
    revoked_epochs: Set[int],
) -> str:
    """Epoch-fencing decision for one on-disk range submission.

    Pure: the coordinator (and its tests) route every submission
    through this single function.  Returns ``"accept"`` only when the
    submission's epoch is the currently granted one and has not been
    revoked, or matches the already-accepted epoch (a re-read of the
    same file); every other combination is a rejection with a reason:

    - ``"reject-duplicate"`` — the range was already folded at a
      different epoch (a double fold, refused).
    - ``"reject-revoked"`` — a zombie submitting after its lease was
      revoked.
    - ``"reject-stale"`` — an epoch that was never (or is no longer)
      the granted one.
    """
    if accepted_epoch is not None:
        return "accept" if epoch == accepted_epoch else "reject-duplicate"
    if epoch in revoked_epochs:
        return "reject-revoked"
    if granted_epoch is not None and epoch == granted_epoch:
        return "accept"
    return "reject-stale"


class RangeSpecStream(SpecStream):
    """A contiguous ``[start, stop)`` slice of another spec stream.

    The machine-side view of its home-range: same fleet header (name
    and seed — home results must not depend on which machine runs
    them), sliced iteration, and a digest derived from the base
    digest plus the bounds so checkpoints of different ranges never
    validate against each other.
    """

    def __init__(self, base: SpecStream, start: int, stop: int) -> None:
        import hashlib

        total = base.n_homes
        if total is None:
            raise ValueError("range slicing needs a sized spec stream")
        if not 0 <= start <= stop <= total:
            raise ValueError(
                f"range [{start}, {stop}) out of bounds for {total} homes"
            )
        self.base = base
        self.start = start
        self.stop = stop
        self.name = base.name
        self.seed = base.seed
        self.n_homes = stop - start
        self.digest = hashlib.sha256(
            f"{base.digest}:{start}:{stop}".encode("utf-8")
        ).hexdigest()

    def iter_homes(self) -> Iterator[HomeSpec]:
        import itertools

        return itertools.islice(self.base.iter_homes(), self.start, self.stop)


# -- on-disk layout --------------------------------------------------------------


def range_dir_name(range_index: int) -> str:
    """Directory name of one range under the coordinator state dir."""
    return f"range-{range_index:04d}"


def _results_path(range_dir: str, epoch: int) -> str:
    return os.path.join(range_dir, f"results-{epoch:04d}.journal")


def _submit_path(range_dir: str, epoch: int) -> str:
    return os.path.join(range_dir, f"submit-{epoch:04d}.json")


def _payload_path(range_dir: str, epoch: int) -> str:
    return os.path.join(range_dir, f"machine-{epoch:04d}.json")


def _log_path(range_dir: str, epoch: int) -> str:
    return os.path.join(range_dir, f"machine-{epoch:04d}.log")


def _epoch_telemetry_dir(range_dir: str, epoch: int) -> str:
    return os.path.join(range_dir, f"telemetry-{epoch:04d}")


def _list_epochs(directory: str, prefix: str, suffix: str) -> List[int]:
    """Epoch numbers of ``<prefix><epoch><suffix>`` entries, ascending."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    epochs = []
    for name in names:
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        core = name[len(prefix):len(name) - len(suffix)] if suffix else name[len(prefix):]
        try:
            epochs.append(int(core))
        except ValueError:
            continue
    return sorted(epochs)


def read_range_results(
    range_dir: str, start: int, stop: int
) -> Dict[int, Dict[str, object]]:
    """Union of every valid home result logged for one range.

    Reads the results journals of *all* lease epochs, oldest first.
    Every record's digest is re-verified; a record that fails (or an
    index outside the range) ends that journal's readable prefix, the
    same contract as a torn tail.  Records for the same home from
    different epochs must agree byte-for-byte — a correct machine is a
    pure function of the spec, so disagreement means corruption or a
    foreign writer and raises :class:`SubmissionMismatch`.
    """
    results: Dict[int, Dict[str, object]] = {}
    digests: Dict[int, str] = {}
    for epoch in _list_epochs(range_dir, "results-", ".journal"):
        for record in read_journal(_results_path(range_dir, epoch)).records:
            try:
                idx = int(record["idx"])
                body = record["result"]
                claimed = str(record["digest"])
            except (KeyError, TypeError, ValueError):
                logger.warning(
                    "range %s epoch %d: malformed results record; "
                    "ignoring the journal tail", range_dir, epoch,
                )
                break
            if not (start <= idx < stop) or result_digest(body) != claimed:
                logger.warning(
                    "range %s epoch %d: invalid record for home %d; "
                    "ignoring the journal tail", range_dir, epoch, idx,
                )
                break
            if idx in digests and digests[idx] != claimed:
                raise SubmissionMismatch(
                    f"range results disagree for home {idx} across epochs "
                    f"in {range_dir} — refusing to merge"
                )
            results[idx] = body
            digests[idx] = claimed
    return results


def covered_prefix(results: Dict[int, Dict[str, object]], start: int, stop: int) -> int:
    """First index of ``[start, stop)`` with no logged result."""
    next_idx = start
    while next_idx < stop and next_idx in results:
        next_idx += 1
    return next_idx


def newest_frame_t(directory: str) -> Optional[float]:
    """Newest wall timestamp of any telemetry frame in ``directory``.

    ``None`` when the dir is missing or has no frames yet.  Only the
    frames of the dir given matter: a lease's liveness is judged on its
    *own* epoch's telemetry dir, so a late frame from a revoked epoch
    can never resurrect the old lease.
    """
    frames = load_frames(directory)
    if not frames:
        return None
    return max(float(frame.get("t", 0.0)) for frame in frames)


def machine_telemetry_dirs(state_dir: str) -> List[str]:
    """Newest-epoch telemetry dir of every range under a coordinator dir.

    The discovery hook for :class:`~repro.fleet.telemetry.MultiFleetMonitor`:
    re-evaluated per poll, so the watched set follows re-leases.
    """
    dirs: List[str] = []
    try:
        names = sorted(os.listdir(state_dir))
    except OSError:
        return []
    for name in names:
        if not name.startswith("range-"):
            continue
        range_dir = os.path.join(state_dir, name)
        epochs = _list_epochs(range_dir, "telemetry-", "")
        if epochs:
            dirs.append(_epoch_telemetry_dir(range_dir, epochs[-1]))
    return dirs


def parse_machine_fault(text: str) -> MachineFault:
    """Parse a ``KIND:RANGE[:AFTER[:DURATION[:EPOCH]]]`` CLI fault spec.

    Examples: ``kill:0:1`` (SIGKILL range 0's machine after one home),
    ``stall:1:2:6`` (freeze for 6 s after two homes), ``drop:0:1::2``
    (partition range 0's *second* lease holder — empty segments keep
    their defaults).
    """
    parts = text.split(":")
    if len(parts) < 2 or len(parts) > 5:
        raise ValueError(
            f"machine fault must be KIND:RANGE[:AFTER[:DURATION[:EPOCH]]], got {text!r}"
        )
    try:
        return MachineFault(
            kind=parts[0],
            range_index=int(parts[1]),
            after_homes=int(parts[2]) if len(parts) > 2 and parts[2] else 1,
            duration_s=float(parts[3]) if len(parts) > 3 and parts[3] else 8.0,
            epoch=int(parts[4]) if len(parts) > 4 and parts[4] else 1,
        )
    except ValueError as error:
        raise ValueError(f"bad machine fault {text!r}: {error}") from None


# -- the machine wrapper ---------------------------------------------------------


class _MachineHeartbeat:
    """Background thread beating on the machine's telemetry channel."""

    def __init__(
        self,
        directory: str,
        range_index: int,
        epoch: int,
        interval_s: float,
        seed: int,
    ) -> None:
        self.range_index = range_index
        self.epoch = epoch
        self.interval_s = interval_s
        #: homes covered so far (read by the monitor, advisory)
        self.progress = 0
        self._writer = TelemetryWriter(directory, channel=MACHINE_CHANNEL)
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._muted = False
        # Deterministic start-phase jitter so a fleet of machines does
        # not beat in lockstep; seeded, never wall-clock random.
        self._phase = random.Random(seed).random() * interval_s
        self._thread = threading.Thread(
            target=self._loop, name="machine-heartbeat", daemon=True
        )

    def start(self) -> None:
        # First beat immediately (from this thread, before the loop
        # exists): the coordinator learns liveness before home 0 runs.
        self._emit()
        self._thread.start()

    def _emit(self) -> None:
        if not self._muted and not self._paused.is_set():
            self._writer.emit(
                "machine-heartbeat",
                range=self.range_index,
                epoch=self.epoch,
                done=self.progress,
            )

    def _loop(self) -> None:
        if self._stop.wait(self._phase):
            return
        while not self._stop.wait(self.interval_s):
            self._emit()

    def pause(self) -> None:
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def mute(self) -> None:
        """Silence the channel permanently (network partition)."""
        self._muted = True

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=2.0)
        self._writer.close()


def run_machine(payload: Dict[str, object]) -> int:
    """Execute one range lease: the body of a machine subprocess.

    Resumes from the union of every prior epoch's results journal,
    runs the uncovered suffix through a :class:`FleetRunner`, logs each
    result (flushed, digest-stamped) before anything else sees it, and
    finishes with one atomic epoch-namespaced submission file carrying
    the range's serialized merge tree.  Injected :class:`MachineFault`s
    whose ``epoch`` matches this lease fire after the configured number
    of homes.  Returns a process exit code.
    """
    source = open_spec(str(payload["spec"]))
    expected_digest = str(payload.get("spec_digest", ""))
    if expected_digest and source.digest != expected_digest:
        print(
            f"machine: spec digest mismatch (have {source.digest[:12]}, "
            f"lease expects {expected_digest[:12]})",
            file=sys.stderr,
        )
        return 2
    range_index = int(payload["range_index"])
    start, stop = int(payload["start"]), int(payload["stop"])
    epoch = int(payload["epoch"])
    range_dir = str(payload["range_dir"])
    os.makedirs(range_dir, exist_ok=True)

    faults = [MachineFault.from_dict(f) for f in payload.get("faults", [])]
    armed = next((f for f in faults if f.epoch == epoch), None)

    prior = read_range_results(range_dir, start, stop)
    next_idx = covered_prefix(prior, start, stop)
    tree = SnapshotMergeTree()
    for idx in range(start, next_idx):
        replayed = HomeResult.from_dict(prior[idx])
        if replayed.ok:
            tree.add(replayed.snapshot())

    telemetry_dir = _epoch_telemetry_dir(range_dir, epoch)
    heartbeat = _MachineHeartbeat(
        telemetry_dir,
        range_index,
        epoch,
        interval_s=float(payload.get("heartbeat_interval_s", 0.5)),
        seed=int(payload.get("machine_seed", 0)),
    )
    heartbeat.progress = next_idx - start

    dropped = False
    runner_box: List[Optional[FleetRunner]] = [None]

    def fire(fault: MachineFault) -> None:
        nonlocal dropped
        if fault.kind == "kill":
            # A powered-off box: no flush, no goodbye frame.
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault.kind == "stall":
            heartbeat.pause()
            time.sleep(fault.duration_s)
            heartbeat.resume()
        else:  # drop: partition — keep working, stop being seen
            dropped = True
            heartbeat.mute()
            if runner_box[0] is not None:
                runner_box[0].mute_telemetry()

    log = JournalWriter(_results_path(range_dir, epoch))
    folded_here = 0

    def on_result(local_idx: int, result: HomeResult) -> None:
        nonlocal folded_here
        body = result.to_dict()
        log.append(
            {"idx": next_idx + local_idx, "digest": result_digest(body), "result": body}
        )
        if result.ok:
            tree.add(result.snapshot())
        folded_here += 1
        heartbeat.progress = (next_idx - start) + folded_here
        if armed is not None and folded_here == armed.after_homes:
            fire(armed)

    if armed is not None and armed.after_homes == 0:
        fire(armed)
    heartbeat.start()
    try:
        if next_idx < stop:
            runner = FleetRunner(
                RangeSpecStream(source, next_idx, stop),
                jobs=int(payload.get("jobs", 1)),
                backend=str(payload.get("backend", "auto")),
                retries=int(payload.get("retries", 0)),
                backoff_base_s=float(payload.get("backoff_base_s", 0.05)),
                backoff_max_s=float(payload.get("backoff_max_s", 2.0)),
                state_root=payload.get("state_root"),
                telemetry_dir=None if dropped else telemetry_dir,
                on_result=on_result,
            )
            runner_box[0] = runner
            runner.run()
        submission = {
            "format": SUBMIT_FORMAT,
            "range_index": range_index,
            "start": start,
            "stop": stop,
            "epoch": epoch,
            "name": source.name,
            "seed": source.seed,
            "spec_digest": source.digest,
            "n_results": stop - start,
            "n_ok": tree.n_shards,
            "merge_tree": tree.to_state(),
        }
        write_snapshot(_submit_path(range_dir, epoch), submission)
    finally:
        heartbeat.stop()
        log.close()
    return 0


def _machine_main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.fleet.distrib <payload.json>", file=sys.stderr)
        return 2
    with open(argv[0], "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return run_machine(payload)


# -- the coordinator -------------------------------------------------------------


@dataclass
class _Lease:
    """One live (or adopted) lease the coordinator is tracking."""

    epoch: int
    proc: Optional[subprocess.Popen]
    granted_at: float
    log_handle: Optional[object] = None


class DistribCoordinator:
    """Partition a fleet across machines and fold the exact report.

    See the module docstring for the protocol.  ``machines`` bounds the
    concurrent subprocesses; ranges are fixed at first grant (recorded
    in the ledger header) so a resume with a different ``machines``
    only changes concurrency, never the partition.  ``stats`` exposes
    side-channel robustness counters (leases granted, revocations,
    rejected submissions, ...) — deliberately *not* part of the report,
    whose bytes must match a single-machine run.
    """

    def __init__(
        self,
        spec: "FleetSpec | SpecStream",
        state_dir: str,
        machines: int = 2,
        jobs: int = 1,
        backend: str = "auto",
        resume: bool = False,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        lease_timeout_s: float = 15.0,
        heartbeat_interval_s: float = 0.5,
        poll_interval_s: float = 0.1,
        max_leases_per_range: int = 6,
        lease_backoff_base_s: float = 0.2,
        lease_backoff_max_s: float = 2.0,
        machine_faults: Sequence[MachineFault] = (),
        state_root: Optional[str] = None,
        python: Optional[str] = None,
    ) -> None:
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines}")
        if lease_timeout_s <= 0:
            raise ValueError(f"lease_timeout_s must be > 0, got {lease_timeout_s}")
        if max_leases_per_range < 1:
            raise ValueError(
                f"max_leases_per_range must be >= 1, got {max_leases_per_range}"
            )
        self.source: SpecStream = spec.stream() if isinstance(spec, FleetSpec) else spec
        if self.source.n_homes is None:
            raise ValueError("distributed runs need a sized spec stream")
        self.state_dir = state_dir
        self.machines = machines
        self.jobs = jobs
        self.backend = backend
        self.resume = resume
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.lease_timeout_s = lease_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.poll_interval_s = poll_interval_s
        self.max_leases_per_range = max_leases_per_range
        self.lease_backoff_base_s = lease_backoff_base_s
        self.lease_backoff_max_s = lease_backoff_max_s
        self.machine_faults = tuple(machine_faults)
        self.state_root = state_root
        self.python = python or sys.executable
        self.stats: Dict[str, int] = {}
        # protocol state, (re)built by run()
        self.ranges: List[Tuple[int, int]] = []
        self._ledger: Optional[JournalWriter] = None
        self._header: Dict[str, object] = {}
        self._granted: Dict[int, int] = {}
        self._done: Dict[int, int] = {}
        self._revoked: Set[Tuple[int, int]] = set()
        self._rejected: Set[Tuple[int, int]] = set()
        self._active: Dict[int, _Lease] = {}
        self._queue: Dict[int, float] = {}
        self._zombies: List[subprocess.Popen] = []
        self._folded_upto = 0
        self._agg: Optional[FleetAggregator] = None
        self._kill_after = 0

    # -- public API --------------------------------------------------------------

    def run(self) -> FleetReport:
        """Drive the fleet to completion and return the exact report."""
        self.stats = {
            "ranges": 0,
            "leases_granted": 0,
            "re_leases": 0,
            "adopted_leases": 0,
            "rejected_submissions": 0,
            "ranges_folded": 0,
        }
        self._kill_after = int(os.environ.get(KILL_AFTER_RANGES_ENV, "0") or 0)
        os.makedirs(self.state_dir, exist_ok=True)
        ledger_path = os.path.join(self.state_dir, LEDGER_NAME)
        if self.resume and os.path.exists(ledger_path):
            self._load_ledger(ledger_path)
        else:
            self._start_fresh(ledger_path)
        self.stats["ranges"] = len(self.ranges)
        try:
            while self._folded_upto < len(self.ranges):
                self._fold_ready()
                if self._folded_upto >= len(self.ranges):
                    break
                now = time.time()
                self._check_active(now)
                self._scan_submissions()
                self._launch(now)
                time.sleep(self.poll_interval_s)
        finally:
            self._shutdown()
        assert self._agg is not None
        return self._agg.report(n_planned=int(self.source.n_homes or 0))

    # -- lifecycle ---------------------------------------------------------------

    def _spec_copy_path(self) -> str:
        return os.path.join(self.state_dir, SPEC_COPY_NAME)

    def _start_fresh(self, ledger_path: str) -> None:
        # Wipe any previous distributed state: mixing two runs' range
        # dirs would be an invitation to fold foreign results.
        for name in os.listdir(self.state_dir):
            path = os.path.join(self.state_dir, name)
            if name.startswith("range-") and os.path.isdir(path):
                shutil.rmtree(path)
            elif name == LEDGER_NAME or name.startswith("coordinator-snapshot-"):
                os.remove(path)
            elif name == SPEC_COPY_NAME:
                os.remove(path)
        n_homes = int(self.source.n_homes or 0)
        write_spec_jsonl(
            self._spec_copy_path(),
            self.source.iter_homes(),
            name=self.source.name,
            seed=self.source.seed,
            n_homes=n_homes,
        )
        copy = JsonlSpecStream(self._spec_copy_path())
        self.ranges = list(partition_ranges(n_homes, self.machines))
        self._header = {
            "kind": "header",
            "format": LEDGER_FORMAT,
            "name": self.source.name,
            "seed": self.source.seed,
            "n_homes": n_homes,
            "spec_digest": copy.digest,
            "source_digest": self.source.digest,
            "ranges": [list(r) for r in self.ranges],
        }
        self._ledger = JournalWriter(ledger_path)
        self._ledger.append(self._header, sync=True)
        self._granted = {}
        self._done = {}
        self._revoked = set()
        self._rejected = set()
        self._active = {}
        self._zombies = []
        self._folded_upto = 0
        self._agg = FleetAggregator(self.source.name, self.source.seed)
        now = time.time()
        self._queue = {r: now for r in range(len(self.ranges))}

    def _load_ledger(self, ledger_path: str) -> None:
        result = read_journal(ledger_path)
        if not result.records:
            raise SubmissionMismatch(
                f"cannot resume: coordinator ledger {ledger_path} is unreadable"
            )
        if result.torn:
            logger.warning(
                "coordinator ledger has a torn tail (%s); truncating to the "
                "valid prefix", result.torn_reason,
            )
        header = result.records[0]
        if header.get("kind") != "header" or int(header.get("format", -1)) != LEDGER_FORMAT:
            raise SubmissionMismatch("coordinator ledger has no valid header")
        if str(header.get("source_digest")) != self.source.digest:
            raise SubmissionMismatch(
                "resume spec does not match the ledger: digest "
                f"{self.source.digest[:12]} != {str(header.get('source_digest'))[:12]}"
            )
        copy_path = self._spec_copy_path()
        if not os.path.exists(copy_path):
            raise SubmissionMismatch(f"cannot resume: {copy_path} is missing")
        copy = JsonlSpecStream(copy_path)
        if copy.digest != str(header.get("spec_digest")):
            raise SubmissionMismatch("cannot resume: the spec copy was modified")
        self._header = header
        self.ranges = [(int(r[0]), int(r[1])) for r in header["ranges"]]
        self._granted = {}
        self._done = {}
        self._revoked = set()
        self._rejected = set()
        self._active = {}
        self._zombies = []
        ledger_folded = 0
        for record in result.records[1:]:
            kind = record.get("kind")
            r = int(record.get("range", -1))
            if kind == "lease":
                self._granted[r] = max(self._granted.get(r, 0), int(record["epoch"]))
            elif kind == "revoke":
                self._revoked.add((r, int(record["epoch"])))
            elif kind == "done":
                self._done[r] = int(record["epoch"])
            elif kind == "reject":
                self._rejected.add((r, int(record["epoch"])))
            elif kind == "folded":
                ledger_folded = max(ledger_folded, r + 1)
        self._ledger = JournalWriter(ledger_path, truncate_to=result.valid_bytes)

        # Newest valid aggregator snapshot wins; ranges folded into the
        # aggregate after that snapshot are re-folded from their range
        # dirs (cheap — the results are on disk, nothing re-runs).
        self._agg = None
        self._folded_upto = 0
        for folded in sorted(self._snapshot_epochs(), reverse=True):
            state = read_snapshot(self._snapshot_path(folded))
            if state is None:
                continue
            if str(state.get("spec_digest")) != str(header["spec_digest"]):
                continue
            self._agg = FleetAggregator.from_state(
                state["agg"], self.source.name, self.source.seed
            )
            self._folded_upto = int(state.get("folded_upto", folded))
            break
        if self._agg is None:
            self._agg = FleetAggregator(self.source.name, self.source.seed)
            self._folded_upto = 0
        if ledger_folded > self._folded_upto:
            logger.info(
                "resume: re-folding ranges %d..%d from disk (snapshot lag)",
                self._folded_upto, ledger_folded - 1,
            )

        now = time.time()
        self._queue = {}
        for r in range(len(self.ranges)):
            if r < self._folded_upto or r in self._done:
                continue
            latest = self._granted.get(r, 0)
            if latest and (r, latest) not in self._revoked:
                # Adopt the orphan lease: its machine may still be
                # running (we were killed, it was not) — give it a
                # fresh grace window; its submission is still welcome.
                self._active[r] = _Lease(epoch=latest, proc=None, granted_at=now)
                self.stats["adopted_leases"] += 1
            else:
                self._queue[r] = now if not latest else now + lease_backoff_s(
                    self.source.seed, r, latest + 1,
                    self.lease_backoff_base_s, self.lease_backoff_max_s,
                )

    def _shutdown(self) -> None:
        for lease in self._active.values():
            self._terminate(lease.proc)
            self._close_handle(lease)
        for proc in self._zombies:
            self._terminate(proc)
        self._zombies = []
        if self._ledger is not None:
            self._ledger.close()
            self._ledger = None

    @staticmethod
    def _terminate(proc: Optional[subprocess.Popen]) -> None:
        if proc is None or proc.poll() is not None:
            return
        proc.kill()
        try:
            proc.wait(timeout=5.0)
        except Exception:  # pragma: no cover - best-effort reaping
            pass

    @staticmethod
    def _close_handle(lease: _Lease) -> None:
        handle = lease.log_handle
        lease.log_handle = None
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover - best-effort
                pass

    # -- folding -----------------------------------------------------------------

    def _range_dir(self, range_index: int) -> str:
        return os.path.join(self.state_dir, range_dir_name(range_index))

    def _snapshot_path(self, folded_upto: int) -> str:
        return os.path.join(
            self.state_dir, f"coordinator-snapshot-{folded_upto:04d}.json"
        )

    def _snapshot_epochs(self) -> List[int]:
        return _list_epochs(self.state_dir, "coordinator-snapshot-", ".json")

    def _fold_ready(self) -> None:
        # Spec order is the fold order: range k folds only after every
        # range before it — that is what makes the reservoirs (keyed on
        # the global fold count) byte-identical to one machine.
        while self._folded_upto < len(self.ranges):
            r = self._folded_upto
            if r not in self._done:
                return
            self._fold_range(r)

    def _fold_range(self, range_index: int) -> None:
        assert self._agg is not None and self._ledger is not None
        epoch = self._done[range_index]
        range_dir = self._range_dir(range_index)
        submission = read_snapshot(_submit_path(range_dir, epoch))
        error = self._submission_error(submission, range_index, epoch)
        if error:
            raise SubmissionMismatch(f"range {range_index}: {error}")
        start, stop = self.ranges[range_index]
        results_map = read_range_results(range_dir, start, stop)
        try:
            results = [
                HomeResult.from_dict(results_map[idx]) for idx in range(start, stop)
            ]
        except KeyError as missing:
            raise SubmissionMismatch(
                f"range {range_index}: results log is missing home {missing} — "
                "refusing to fold an incomplete range"
            ) from None
        try:
            self._agg.absorb_range(start, results, submission["merge_tree"])
        except ValueError as error_:
            raise SubmissionMismatch(f"range {range_index}: {error_}") from None
        self._ledger.append({"kind": "folded", "range": range_index}, sync=True)
        self._folded_upto = range_index + 1
        self.stats["ranges_folded"] += 1
        logger.info(
            "folded range %d (homes [%d, %d), epoch %d)",
            range_index, start, stop, epoch,
        )
        self._write_snapshot()
        if self._kill_after and self.stats["ranges_folded"] >= self._kill_after:
            # Deterministic coordinator-crash injection for resume
            # smoke tests: die the hard way, mid-protocol.
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover

    def _write_snapshot(self) -> None:
        assert self._agg is not None
        write_snapshot(
            self._snapshot_path(self._folded_upto),
            {
                "spec_digest": self._header["spec_digest"],
                "folded_upto": self._folded_upto,
                "agg": self._agg.to_state(),
            },
        )
        for folded in self._snapshot_epochs()[:-KEEP_SNAPSHOTS]:
            try:
                os.remove(self._snapshot_path(folded))
            except OSError:  # pragma: no cover - best-effort pruning
                pass

    def _submission_error(
        self, submission: Optional[Dict[str, object]], range_index: int, epoch: int
    ) -> Optional[str]:
        if submission is None:
            return "submission file missing or corrupt"
        try:
            if int(submission["format"]) != SUBMIT_FORMAT:
                return f"unsupported submission format {submission['format']!r}"
            start, stop = self.ranges[range_index]
            checks = (
                ("range_index", range_index),
                ("start", start),
                ("stop", stop),
                ("epoch", epoch),
                ("n_results", stop - start),
            )
            for key, expected in checks:
                if int(submission[key]) != expected:
                    return f"{key} is {submission[key]!r}, lease expects {expected}"
            if str(submission["name"]) != str(self._header["name"]):
                return "fleet name mismatch"
            if int(submission["seed"]) != int(self._header["seed"]):
                return "fleet seed mismatch"
            if str(submission["spec_digest"]) != str(self._header["spec_digest"]):
                return "spec digest mismatch"
            if not isinstance(submission["merge_tree"], dict):
                return "merge_tree is not a state dict"
        except (KeyError, TypeError, ValueError) as error:
            return f"malformed submission ({error})"
        return None

    # -- leases ------------------------------------------------------------------

    def _check_active(self, now: float) -> None:
        for r in sorted(self._active):
            lease = self._active[r]
            range_dir = self._range_dir(r)
            submission = read_snapshot(_submit_path(range_dir, lease.epoch))
            if submission is not None:
                error = self._submission_error(submission, r, lease.epoch)
                if error is None:
                    self._accept(r, lease)
                else:
                    self._reject(r, lease.epoch, f"malformed: {error}")
                    self._revoke(r, lease, "malformed-submission", now)
                continue
            if lease.proc is not None and lease.proc.poll() is not None:
                self._revoke(
                    r, lease, f"machine-exit rc={lease.proc.returncode}", now
                )
                continue
            alive_t = newest_frame_t(_epoch_telemetry_dir(range_dir, lease.epoch))
            if lease_expired(lease.granted_at, alive_t, self.lease_timeout_s, now):
                self._revoke(r, lease, "lease-expired", now)

    def _accept(self, range_index: int, lease: _Lease) -> None:
        assert self._ledger is not None
        self._ledger.append(
            {"kind": "done", "range": range_index, "epoch": lease.epoch}, sync=True
        )
        self._done[range_index] = lease.epoch
        del self._active[range_index]
        self._close_handle(lease)
        if lease.proc is not None:
            try:
                lease.proc.wait(timeout=10.0)
            except Exception:  # pragma: no cover - a wedged-but-done machine
                self._terminate(lease.proc)

    def _revoke(self, range_index: int, lease: _Lease, reason: str, now: float) -> None:
        assert self._ledger is not None
        logger.warning(
            "revoking lease on range %d epoch %d: %s", range_index, lease.epoch, reason
        )
        self._ledger.append(
            {
                "kind": "revoke",
                "range": range_index,
                "epoch": lease.epoch,
                "reason": reason,
            },
            sync=True,
        )
        self._revoked.add((range_index, lease.epoch))
        del self._active[range_index]
        self._close_handle(lease)
        if lease.proc is not None and lease.proc.poll() is None:
            # Partition semantics: a machine we cannot hear might still
            # be working. We do not kill it — epoch fencing makes its
            # late output harmless — but we keep the handle to reap it
            # at shutdown.
            self._zombies.append(lease.proc)
        self.stats["re_leases"] += 1
        self._queue[range_index] = now + lease_backoff_s(
            self.source.seed,
            range_index,
            lease.epoch + 1,
            self.lease_backoff_base_s,
            self.lease_backoff_max_s,
        )

    def _reject(self, range_index: int, epoch: int, reason: str) -> None:
        assert self._ledger is not None
        if (range_index, epoch) in self._rejected:
            return
        logger.warning(
            "rejecting submission for range %d epoch %d: %s",
            range_index, epoch, reason,
        )
        self._ledger.append(
            {"kind": "reject", "range": range_index, "epoch": epoch, "reason": reason},
            sync=True,
        )
        self._rejected.add((range_index, epoch))
        self.stats["rejected_submissions"] += 1

    def _scan_submissions(self) -> None:
        """Fence off-protocol submissions: zombies, duplicates, stale epochs."""
        for r in range(len(self.ranges)):
            range_dir = self._range_dir(r)
            lease = self._active.get(r)
            revoked_epochs = {e for (rr, e) in self._revoked if rr == r}
            for epoch in _list_epochs(range_dir, "submit-", ".json"):
                if (r, epoch) in self._rejected:
                    continue
                if lease is not None and epoch == lease.epoch:
                    continue  # the live candidate, judged in _check_active
                disposition = submission_disposition(
                    epoch,
                    granted_epoch=lease.epoch if lease is not None else None,
                    accepted_epoch=self._done.get(r),
                    revoked_epochs=revoked_epochs,
                )
                if disposition != "accept":
                    self._reject(r, epoch, disposition)

    def _launch(self, now: float) -> None:
        free = self.machines - len(self._active)
        for r in sorted(self._queue):
            if free <= 0:
                return
            if self._queue[r] > now:
                continue
            if r in self._done or r < self._folded_upto:
                del self._queue[r]
                continue
            epoch = self._granted.get(r, 0) + 1
            if epoch > self.max_leases_per_range:
                raise DistribError(
                    f"range {r} exhausted its {self.max_leases_per_range} leases — "
                    "the machine pool looks systematically broken; failing closed"
                )
            self._grant(r, epoch, now)
            del self._queue[r]
            free -= 1

    def _grant(self, range_index: int, epoch: int, now: float) -> None:
        assert self._ledger is not None
        start, stop = self.ranges[range_index]
        range_dir = self._range_dir(range_index)
        os.makedirs(range_dir, exist_ok=True)
        payload = {
            "format": PAYLOAD_FORMAT,
            "spec": self._spec_copy_path(),
            "spec_digest": self._header["spec_digest"],
            "range_index": range_index,
            "start": start,
            "stop": stop,
            "epoch": epoch,
            "range_dir": range_dir,
            "jobs": self.jobs,
            "backend": self.backend,
            "retries": self.retries,
            "backoff_base_s": self.backoff_base_s,
            "backoff_max_s": self.backoff_max_s,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "machine_seed": machine_seed(self.source.seed, range_index, epoch),
            "state_root": self.state_root,
            "faults": [
                fault.to_dict()
                for fault in self.machine_faults
                if fault.range_index == range_index
            ],
        }
        payload_path = _payload_path(range_dir, epoch)
        with open(payload_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        # Write-ahead: the lease is durable before the machine exists,
        # so a coordinator crash here resumes into an orphan lease that
        # simply times out and re-leases.
        self._ledger.append(
            {"kind": "lease", "range": range_index, "epoch": epoch}, sync=True
        )
        self._granted[range_index] = epoch
        env = dict(os.environ)
        env.pop(KILL_AFTER_ENV, None)
        env.pop(KILL_AFTER_RANGES_ENV, None)
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        src_root = os.path.dirname(package_root)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        log_handle = open(_log_path(range_dir, epoch), "ab")
        proc = subprocess.Popen(
            [self.python, "-m", "repro.fleet.distrib", payload_path],
            stdout=log_handle,
            stderr=subprocess.STDOUT,
            env=env,
        )
        self._active[range_index] = _Lease(
            epoch=epoch, proc=proc, granted_at=now, log_handle=log_handle
        )
        self.stats["leases_granted"] += 1
        logger.info(
            "leased range %d (homes [%d, %d)) to machine pid %d, epoch %d",
            range_index, start, stop, proc.pid, epoch,
        )


# -- offline merge ---------------------------------------------------------------


def _expand_range_dirs(paths: Sequence[str]) -> List[str]:
    """Resolve CLI paths to range dirs (a coordinator dir expands)."""
    range_dirs: List[str] = []
    for path in paths:
        if _list_epochs(path, "submit-", ".json") or _list_epochs(
            path, "results-", ".journal"
        ):
            range_dirs.append(path)
            continue
        children = sorted(
            os.path.join(path, name)
            for name in (os.listdir(path) if os.path.isdir(path) else [])
            if name.startswith("range-")
            and os.path.isdir(os.path.join(path, name))
        )
        if not children:
            raise SubmissionMismatch(
                f"{path}: neither a range dir nor a coordinator state dir"
            )
        range_dirs.extend(children)
    return range_dirs


def merge_range_dirs(paths: Sequence[str]) -> FleetReport:
    """Absorb finished range dirs offline into one exact fleet report.

    The ``fleet-merge`` backend: give it range dirs (or coordinator
    state dirs, which expand to their ranges) whose newest valid
    submissions tile ``[0, N)`` for one fleet, and it folds them in
    spec order — byte-identical to the run that produced them.  All
    fail-closed: a gap, an overlap, a header mismatch between dirs, or
    an incomplete results log raises :class:`SubmissionMismatch`.
    """
    entries: List[Tuple[str, Dict[str, object]]] = []
    for range_dir in _expand_range_dirs(paths):
        chosen: Optional[Dict[str, object]] = None
        for epoch in sorted(_list_epochs(range_dir, "submit-", ".json"), reverse=True):
            submission = read_snapshot(_submit_path(range_dir, epoch))
            if submission is None:
                continue
            try:
                if int(submission["format"]) == SUBMIT_FORMAT:
                    chosen = submission
                    break
            except (KeyError, TypeError, ValueError):
                continue
        if chosen is None:
            raise SubmissionMismatch(f"{range_dir}: no valid range submission")
        entries.append((range_dir, chosen))
    if not entries:
        raise SubmissionMismatch("no range dirs to merge")
    entries.sort(key=lambda entry: int(entry[1]["start"]))
    first = entries[0][1]
    agg = FleetAggregator(str(first["name"]), int(first["seed"]))
    expect = 0
    for range_dir, submission in entries:
        for key in ("name", "seed", "spec_digest"):
            if submission[key] != first[key]:
                raise SubmissionMismatch(
                    f"{range_dir}: {key} differs from the other ranges — "
                    "these dirs are not one fleet"
                )
        start, stop = int(submission["start"]), int(submission["stop"])
        if start != expect:
            kind = "gap" if start > expect else "overlap"
            raise SubmissionMismatch(
                f"{range_dir}: range {kind} — starts at {start}, expected {expect}"
            )
        results_map = read_range_results(range_dir, start, stop)
        try:
            results = [
                HomeResult.from_dict(results_map[idx]) for idx in range(start, stop)
            ]
        except KeyError as missing:
            raise SubmissionMismatch(
                f"{range_dir}: results log is missing home {missing}"
            ) from None
        try:
            agg.absorb_range(start, results, submission["merge_tree"])
        except ValueError as error:
            raise SubmissionMismatch(f"{range_dir}: {error}") from None
        expect = stop
    return agg.report(n_planned=expect)


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    sys.exit(_machine_main())
