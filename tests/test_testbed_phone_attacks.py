"""Unit tests for the phone model and attacker models."""

import numpy as np
import pytest

from repro.net import TrafficClass
from repro.testbed import (
    APP_PACKAGES,
    AccountCompromiseAttack,
    BruteForceAttack,
    CloudDirectory,
    Location,
    Phone,
    ReplayAttack,
    SpywareSyncAttack,
)


class TestPhone:
    def test_interaction_has_app_package(self):
        phone = Phone(seed=0)
        interaction = phone.interact("Nest-E", start=10.0)
        assert interaction.app_package == APP_PACKAGES["Nest-E"]

    def test_unknown_device_gets_fallback_package(self):
        interaction = Phone(seed=0).interact("Mystery", start=0.0)
        assert "mystery" in interaction.app_package

    def test_human_flag_controls_motion(self):
        phone = Phone(seed=0)
        human = phone.interact("SP10", 0.0, human=True, intensity=1.0)
        robot = phone.interact("SP10", 0.0, human=False)
        assert human.sensor_window[:, 3:6].std() > robot.sensor_window[:, 3:6].std()

    def test_sensor_window_shape(self):
        interaction = Phone(seed=0).interact("SP10", 0.0)
        assert interaction.sensor_window.shape[1] == 6


@pytest.fixture
def cloud():
    return CloudDirectory(seed=9)


class TestAttacks:
    def test_account_compromise_emits_attack_class(self, cloud):
        attack = AccountCompromiseAttack(cloud, Location.US, seed=1)
        event = attack.launch("EchoDot4", start=100.0)
        assert event.attack == "account-compromise"
        assert all(p.traffic_class is TrafficClass.ATTACK for p in event.packets)
        assert event.packets[0].timestamp == pytest.approx(100.0)

    def test_spyware_sync_flag(self, cloud):
        attack = SpywareSyncAttack(cloud, Location.US, seed=1)
        event = attack.launch("EchoDot4", start=0.0)
        assert event.synchronized_with_user
        assert event.attack == "spyware-sync"

    def test_replay_attack_carries_wire(self, cloud):
        attack = ReplayAttack(cloud, Location.US, seed=1)
        event = attack.launch_with_wire("SP10", 0.0, captured_wire=b"old-bytes")
        assert event.replayed_wire == b"old-bytes"

    def test_brute_force_burst_spacing(self, cloud):
        attack = BruteForceAttack(cloud, Location.US, seed=1)
        events = attack.launch_burst("SP10", start=0.0, attempts=5, gap_s=20.0)
        assert len(events) == 5
        starts = [e.start for e in events]
        assert starts == [0.0, 20.0, 40.0, 60.0, 80.0]

    def test_brute_force_validates_attempts(self, cloud):
        with pytest.raises(ValueError):
            BruteForceAttack(cloud).launch_burst("SP10", 0.0, attempts=0)

    def test_attack_mimics_manual_shape(self, cloud):
        """Attack traffic is rendered from the device's manual templates."""
        attack = AccountCompromiseAttack(cloud, Location.US, seed=1)
        event = attack.launch("SP10", start=0.0)
        # SP10 commands are exactly the 2-packet notification with the
        # distinctive 235 B first packet — an attacker's command looks
        # identical on the wire.
        assert len(event.packets) == 2
        assert event.packets[0].size == 235
