#!/usr/bin/env python
"""Record, gate, and report the committed perf trajectory.

The benches already write machine-readable ``BENCH_*.json`` headlines
when ``FIAT_BENCH_OUT`` is set; this tool turns those one-off files
into the *committed* trajectory under ``benchmarks/baselines/``:

Record a run (after ``FIAT_BENCH_OUT=/tmp/bench pytest benchmarks/...``)::

    python tools/bench_track.py record --bench-dir /tmp/bench \
        --run "$GITHUB_RUN_ID" --note "PR 7 baseline"

Gate the newest entry against the history median (CI regression gate;
exits 1 on any tracked metric outside its tolerance)::

    python tools/bench_track.py check

Render the trend table (same view as ``fiat-repro bench-report``)::

    python tools/bench_track.py report --last 20

The history file is plain JSONL (one entry per run, headlines only) so
diffs stay reviewable and a botched line can never brick the gate —
malformed entries are skipped on read.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.trajectory import (  # noqa: E402  (path bootstrap above)
    DEFAULT_HISTORY_PATH,
    check_regression,
    load_history,
    record_run,
    render_trend,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_track", description="committed perf trajectory tool"
    )
    parser.add_argument(
        "--history",
        default=os.path.join(REPO_ROOT, DEFAULT_HISTORY_PATH),
        help="trajectory history JSONL (default: benchmarks/baselines/history.jsonl)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="append one bench run to the history")
    record.add_argument(
        "--bench-dir", required=True,
        help="directory holding the run's BENCH_*.json files (FIAT_BENCH_OUT)",
    )
    record.add_argument("--run", default="local", help="run id (e.g. CI run number)")
    record.add_argument("--note", default="", help="free-form annotation")

    check = sub.add_parser(
        "check", help="gate the newest entry against the history median (exit 1 on regression)"
    )
    check.add_argument(
        "--bench-dir",
        help="optionally record this bench dir first, then gate it",
    )
    check.add_argument("--run", default="local", help="run id when --bench-dir is given")

    report = sub.add_parser("report", help="render the trend table")
    report.add_argument("--last", type=int, default=12, help="sparkline window")

    args = parser.parse_args(argv)

    if args.command == "record":
        entry = record_run(
            args.bench_dir, history_path=args.history, run_id=args.run, note=args.note
        )
        benches = ", ".join(sorted(entry["benches"]))
        print(f"recorded run {entry['run']!r} ({benches}) -> {args.history}")
        return 0

    if args.command == "check":
        if args.bench_dir:
            record_run(args.bench_dir, history_path=args.history, run_id=args.run)
        entries = load_history(args.history)
        if not entries:
            print(f"bench gate: no history at {args.history} — nothing to gate")
            return 0
        result = check_regression(entries)
        print(result.describe())
        return 0 if result.ok else 1

    entries = load_history(args.history)
    print(render_trend(entries, last=args.last))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
