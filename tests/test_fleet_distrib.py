"""Tests for the distributed fleet coordinator (repro.fleet.distrib).

The contract under test has three legs and every test pins at least
one:

* *exactness*: a fleet distributed over N machine subprocesses — or
  merged offline from their range dirs — produces a report that is
  byte-identical to the single-machine ``FleetRunner`` run, regardless
  of machine count, fault injection, reassignment order, or a
  coordinator crash mid-run;
* *fencing*: range ownership is lease-based and epoch-fenced.  A
  heartbeat exactly at the deadline keeps the lease; a zombie machine
  submitting after revocation is rejected and counted, never folded;
  duplicate and stale submissions are refused fail-closed;
* *durability*: per-machine results journals double as checkpoints
  (an epoch-2 lease replays its predecessor's log instead of
  re-running homes) and the coordinator ledger resumes byte-identically
  after SIGKILL without re-running completed ranges.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.fleet import (
    DistribCoordinator,
    DistribError,
    FleetAggregator,
    FleetRunner,
    HomeResult,
    RangeSpecStream,
    SubmissionMismatch,
    generate_fleet,
    machine_telemetry_dirs,
    merge_range_dirs,
    parse_machine_fault,
    partition_ranges,
    write_spec_jsonl,
)
from repro.fleet.checkpoint import result_digest
from repro.fleet.distrib import (
    LEDGER_NAME,
    covered_prefix,
    lease_backoff_s,
    lease_expired,
    machine_seed,
    range_dir_name,
    read_range_results,
    run_machine,
    submission_disposition,
)
from repro.faults import FaultPlan, MachineFault
from repro.recovery.journal import JournalWriter, read_journal
from repro.recovery.snapshot import read_snapshot

N_HOMES = 4


def _spec(n=N_HOMES, seed=0):
    return generate_fleet(
        n, seed=seed, n_manual=1, n_non_manual=2, n_attacks=1, n_training_events=40
    )


@pytest.fixture(scope="module")
def serial_ref():
    """The single-machine reference: spec + its report bytes."""
    spec = _spec()
    report = FleetRunner(spec, jobs=1).run()
    return spec, report.to_json()


@pytest.fixture(scope="module")
def clean_distrib(tmp_path_factory, serial_ref):
    """One clean 2-machine distributed run over the reference spec."""
    spec, _ = serial_ref
    state_dir = str(tmp_path_factory.mktemp("distrib") / "state")
    coordinator = DistribCoordinator(spec, state_dir=state_dir, machines=2)
    report = coordinator.run()
    return state_dir, coordinator, report


# -- pure helpers ----------------------------------------------------------------


class TestPartitionRanges:
    def test_property_sweep(self):
        for n_homes in range(0, 26):
            for n_machines in range(1, 9):
                ranges = partition_ranges(n_homes, n_machines)
                # tiles [0, n_homes) contiguously, in order
                cursor = 0
                for start, stop in ranges:
                    assert start == cursor
                    assert stop > start  # never an empty range
                    cursor = stop
                assert cursor == n_homes
                assert len(ranges) == min(n_homes, n_machines)
                # balanced: sizes differ by at most one
                if ranges:
                    sizes = [stop - start for start, stop in ranges]
                    assert max(sizes) - min(sizes) <= 1
                # pure: same inputs, same cover
                assert partition_ranges(n_homes, n_machines) == ranges

    def test_zero_homes(self):
        assert partition_ranges(0, 4) == ()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            partition_ranges(-1, 2)
        with pytest.raises(ValueError):
            partition_ranges(4, 0)


class TestRangeSpecStream:
    def test_slice_matches_islice(self):
        spec = _spec(5)
        stream = RangeSpecStream(spec.stream(), 1, 4)
        assert stream.n_homes == 3
        assert stream.name == spec.name
        assert stream.seed == spec.seed
        sliced = list(stream.iter_homes())
        assert [h.home_id for h in sliced] == [h.home_id for h in spec.homes[1:4]]

    def test_digest_depends_on_bounds(self):
        base = _spec(5).stream()
        a = RangeSpecStream(base, 0, 2)
        b = RangeSpecStream(base, 2, 5)
        assert a.digest != b.digest
        assert a.digest != base.digest
        assert RangeSpecStream(base, 0, 2).digest == a.digest

    def test_bounds_checked(self):
        base = _spec(3).stream()
        with pytest.raises(ValueError):
            RangeSpecStream(base, -1, 2)
        with pytest.raises(ValueError):
            RangeSpecStream(base, 2, 1)
        with pytest.raises(ValueError):
            RangeSpecStream(base, 0, 4)


class TestLeaseLogic:
    def test_heartbeat_exactly_at_deadline_keeps_lease(self):
        # Strictly greater-than: quiet for exactly the timeout is alive.
        assert not lease_expired(100.0, 105.0, 10.0, now=115.0)
        assert lease_expired(100.0, 105.0, 10.0, now=115.0001)

    def test_no_frames_floors_at_grant_time(self):
        assert not lease_expired(100.0, None, 10.0, now=110.0)
        assert lease_expired(100.0, None, 10.0, now=110.5)
        # a stale pre-grant frame never counts against the new lease
        assert not lease_expired(100.0, 50.0, 10.0, now=110.0)

    def test_backoff_is_seeded_and_bounded(self):
        a = lease_backoff_s(0, 1, 2)
        assert a == lease_backoff_s(0, 1, 2)  # resume re-derives it
        assert a != lease_backoff_s(0, 1, 3)
        for epoch in range(1, 8):
            delay = lease_backoff_s(0, 0, epoch, base_s=0.2, max_s=2.0)
            assert 0.0 < delay <= 2.0 * 1.5

    def test_machine_seed_distinct(self):
        seeds = {machine_seed(0, r, e) for r in range(4) for e in range(1, 4)}
        assert len(seeds) == 12


class TestSubmissionDisposition:
    def test_current_epoch_accepted(self):
        assert submission_disposition(2, 2, None, set()) == "accept"

    def test_zombie_rejected_after_revocation(self):
        assert submission_disposition(1, 2, None, {1}) == "reject-revoked"

    def test_double_fold_refused(self):
        assert submission_disposition(1, None, 2, set()) == "reject-duplicate"
        # re-reading the accepted file is idempotent, not a duplicate
        assert submission_disposition(2, None, 2, set()) == "accept"

    def test_unknown_epoch_is_stale(self):
        assert submission_disposition(3, 2, None, {1}) == "reject-stale"
        assert submission_disposition(1, None, None, set()) == "reject-stale"


class TestMachineFault:
    def test_parse_full_and_defaults(self):
        fault = parse_machine_fault("kill:2")
        assert (fault.kind, fault.range_index, fault.after_homes) == ("kill", 2, 1)
        assert fault.epoch == 1
        fault = parse_machine_fault("stall:0:3:6.5:2")
        assert fault == MachineFault("stall", 0, after_homes=3, duration_s=6.5, epoch=2)
        # empty segments keep defaults
        fault = parse_machine_fault("drop:1::4.0")
        assert (fault.after_homes, fault.duration_s) == (1, 4.0)

    def test_parse_rejects_garbage(self):
        for text in ("", "kill", "fry:0", "kill:x", "kill:-1", "kill:0:-2"):
            with pytest.raises(ValueError):
                parse_machine_fault(text)

    def test_fault_plan_carries_machine_faults(self):
        fault = MachineFault("kill", 0)
        plan = FaultPlan(machine_faults=[fault])
        assert plan.machine_faults == (fault,)
        assert MachineFault.from_dict(fault.to_dict()) == fault


# -- results journals ------------------------------------------------------------


class TestRangeResults:
    def _record(self, idx, payload):
        body = {"home_id": f"home-{idx:04d}", "ok": True, "blob": payload}
        return {"idx": idx, "digest": result_digest(body), "result": body}

    def test_union_and_covered_prefix(self, tmp_path):
        range_dir = str(tmp_path)
        with JournalWriter(os.path.join(range_dir, "results-0001.journal")) as log:
            log.append(self._record(0, "a"))
        with JournalWriter(os.path.join(range_dir, "results-0002.journal")) as log:
            log.append(self._record(0, "a"))  # same bytes: agrees
            log.append(self._record(1, "b"))
        results = read_range_results(range_dir, 0, 3)
        assert sorted(results) == [0, 1]
        assert covered_prefix(results, 0, 3) == 2
        assert covered_prefix({}, 0, 3) == 0

    def test_bad_digest_ends_readable_prefix(self, tmp_path):
        range_dir = str(tmp_path)
        bad = self._record(1, "b")
        bad["digest"] = "0" * 64
        with JournalWriter(os.path.join(range_dir, "results-0001.journal")) as log:
            log.append(self._record(0, "a"))
            log.append(bad)
            log.append(self._record(2, "c"))  # after the bad record: ignored
        results = read_range_results(range_dir, 0, 3)
        assert sorted(results) == [0]

    def test_out_of_range_index_rejected(self, tmp_path):
        range_dir = str(tmp_path)
        with JournalWriter(os.path.join(range_dir, "results-0001.journal")) as log:
            log.append(self._record(7, "x"))
        assert read_range_results(range_dir, 0, 3) == {}

    def test_cross_epoch_disagreement_raises(self, tmp_path):
        range_dir = str(tmp_path)
        with JournalWriter(os.path.join(range_dir, "results-0001.journal")) as log:
            log.append(self._record(0, "a"))
        with JournalWriter(os.path.join(range_dir, "results-0002.journal")) as log:
            log.append(self._record(0, "DIFFERENT"))
        with pytest.raises(SubmissionMismatch):
            read_range_results(range_dir, 0, 3)


# -- exact merge -----------------------------------------------------------------


class TestExactMerge:
    def test_distrib_report_is_byte_identical(self, serial_ref, clean_distrib):
        _, ref = serial_ref
        _, coordinator, report = clean_distrib
        assert report.to_json() == ref
        assert coordinator.stats["ranges"] == 2
        assert coordinator.stats["leases_granted"] == 2
        assert coordinator.stats["re_leases"] == 0
        assert coordinator.stats["rejected_submissions"] == 0
        assert coordinator.stats["ranges_folded"] == 2

    def test_merge_range_dirs_matches(self, serial_ref, clean_distrib):
        _, ref = serial_ref
        state_dir, _, _ = clean_distrib
        assert merge_range_dirs([state_dir]).to_json() == ref
        # explicit range dirs, listed out of order, merge identically
        dirs = [
            os.path.join(state_dir, range_dir_name(1)),
            os.path.join(state_dir, range_dir_name(0)),
        ]
        assert merge_range_dirs(dirs).to_json() == ref

    def test_merge_refuses_gaps(self, clean_distrib):
        state_dir, _, _ = clean_distrib
        with pytest.raises(SubmissionMismatch):
            merge_range_dirs([os.path.join(state_dir, range_dir_name(1))])

    def test_absorb_range_equals_sequential_adds(self, serial_ref, clean_distrib):
        spec, _ = serial_ref
        state_dir, coordinator, _ = clean_distrib
        results = {}
        for start, stop in coordinator.ranges:
            raw = read_range_results(
                os.path.join(state_dir, range_dir_name(coordinator.ranges.index((start, stop)))),
                start,
                stop,
            )
            results.update({idx: HomeResult.from_dict(raw[idx]) for idx in raw})
        sequential = FleetAggregator(name=spec.name, seed=spec.seed)
        for idx in sorted(results):
            sequential.add(idx, results[idx])
        ranged = FleetAggregator(name=spec.name, seed=spec.seed)
        for index, (start, stop) in enumerate(coordinator.ranges):
            submission = read_snapshot(
                os.path.join(state_dir, range_dir_name(index), "submit-0001.json")
            )
            ranged.absorb_range(
                start,
                [results[idx] for idx in range(start, stop)],
                merge_tree_state=submission["merge_tree"],
            )
        assert ranged.report(n_planned=N_HOMES).to_json() == sequential.report(
            n_planned=N_HOMES
        ).to_json()

    def test_absorb_range_rejects_shard_mismatch(self, serial_ref, clean_distrib):
        spec, _ = serial_ref
        state_dir, coordinator, _ = clean_distrib
        start, stop = coordinator.ranges[0]
        raw = read_range_results(
            os.path.join(state_dir, range_dir_name(0)), start, stop
        )
        results = [HomeResult.from_dict(raw[idx]) for idx in range(start, stop)]
        submission = read_snapshot(
            os.path.join(state_dir, range_dir_name(1), "submit-0001.json")
        )
        # range 1's tree does not cover range 0's ok results
        agg = FleetAggregator(name=spec.name, seed=spec.seed)
        with pytest.raises(ValueError):
            agg.absorb_range(
                start, results[:-1], merge_tree_state=submission["merge_tree"]
            )


# -- the machine body ------------------------------------------------------------


class TestRunMachine:
    def _payload(self, tmp_path, spec, epoch, start=0, stop=N_HOMES):
        spec_path = os.path.join(str(tmp_path), "spec.jsonl")
        if not os.path.exists(spec_path):
            write_spec_jsonl(
                spec_path,
                spec.homes,
                name=spec.name,
                seed=spec.seed,
                n_homes=len(spec.homes),
            )
        stream = spec.stream()
        return {
            "format": 1,
            "spec": spec_path,
            "spec_digest": "",
            "range_index": 0,
            "start": start,
            "stop": stop,
            "epoch": epoch,
            "range_dir": os.path.join(str(tmp_path), range_dir_name(0)),
            "jobs": 1,
            "heartbeat_interval_s": 0.2,
            "machine_seed": machine_seed(stream.seed, 0, epoch),
        }

    def test_clean_run_then_replay_epoch(self, tmp_path, serial_ref):
        spec, ref = serial_ref
        payload = self._payload(tmp_path, spec, epoch=1)
        assert run_machine(payload) == 0
        range_dir = payload["range_dir"]
        first = read_snapshot(os.path.join(range_dir, "submit-0001.json"))
        assert first["n_results"] == N_HOMES
        # the range dir alone merges back to the exact serial report
        assert merge_range_dirs([range_dir]).to_json() == ref

        # a second lease epoch replays the journal: no home re-runs
        assert run_machine(self._payload(tmp_path, spec, epoch=2)) == 0
        second = read_snapshot(os.path.join(range_dir, "submit-0002.json"))
        assert second["merge_tree"] == first["merge_tree"]
        replay_log = read_journal(os.path.join(range_dir, "results-0002.journal"))
        assert replay_log.records == []  # everything came from epoch 1's journal


# -- coordinator end-to-end ------------------------------------------------------


class TestCoordinatorFaults:
    def test_kill_fault_releases_and_stays_exact(self, tmp_path, serial_ref):
        spec, ref = serial_ref
        coordinator = DistribCoordinator(
            spec,
            state_dir=str(tmp_path / "state"),
            machines=2,
            machine_faults=[MachineFault("kill", 0, after_homes=1)],
        )
        report = coordinator.run()
        assert report.to_json() == ref
        assert coordinator.stats["re_leases"] >= 1
        assert coordinator.stats["leases_granted"] >= 3

    def test_drop_fault_zombie_submission_rejected(self, tmp_path, serial_ref):
        spec, ref = serial_ref
        coordinator = DistribCoordinator(
            spec,
            state_dir=str(tmp_path / "state"),
            machines=1,  # one range: the zombie owns all remaining homes
            lease_timeout_s=2.0,
            machine_faults=[MachineFault("drop", 0, after_homes=1)],
        )
        report = coordinator.run()
        assert report.to_json() == ref
        assert coordinator.stats["re_leases"] >= 1
        # the partitioned machine finished in the dark and submitted;
        # its revoked-epoch submission was counted, never folded
        assert coordinator.stats["rejected_submissions"] >= 1
        assert coordinator.stats["ranges_folded"] == 1

    def test_exhausted_leases_fail_closed(self, tmp_path, serial_ref):
        spec, _ = serial_ref
        coordinator = DistribCoordinator(
            spec,
            state_dir=str(tmp_path / "state"),
            machines=2,
            max_leases_per_range=1,
            lease_backoff_base_s=0.0,
            machine_faults=[
                MachineFault("kill", 0, after_homes=0, epoch=1),
            ],
        )
        with pytest.raises(DistribError):
            coordinator.run()


class TestCoordinatorResume:
    def test_sigkill_resume_is_byte_identical(self, tmp_path, serial_ref):
        spec, ref = serial_ref
        state_dir = str(tmp_path / "state")
        spec_path = str(tmp_path / "spec.jsonl")
        out_path = str(tmp_path / "report.json")
        write_spec_jsonl(
            spec_path, spec.homes, name=spec.name, seed=spec.seed,
            n_homes=len(spec.homes),
        )
        base = [
            sys.executable, "-m", "repro.cli", "fleet",
            "--spec", spec_path, "--machines", "2", "--jobs", "1",
            "--state-dir", state_dir, "--out", out_path,
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        env["FIAT_DISTRIB_KILL_AFTER"] = "1"
        first = subprocess.run(
            base, env=env, cwd="/root/repo", capture_output=True, text=True,
            timeout=180,
        )
        assert first.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL), (
            first.stdout,
            first.stderr,
        )
        env.pop("FIAT_DISTRIB_KILL_AFTER")
        second = subprocess.run(
            base + ["--resume"], env=env, cwd="/root/repo",
            capture_output=True, text=True, timeout=180,
        )
        assert second.returncode == 0, (second.stdout, second.stderr)
        with open(out_path, "r", encoding="utf-8") as handle:
            assert handle.read().rstrip("\n") == ref
        # completed ranges were not re-leased after the crash: the
        # ledger holds exactly one lease record per range
        ledger = read_journal(os.path.join(state_dir, LEDGER_NAME))
        leases = [r for r in ledger.records if r.get("kind") == "lease"]
        assert len(leases) == 2
        assert len({r["range"] for r in leases}) == 2

    def test_resume_with_foreign_spec_fails_closed(self, tmp_path, serial_ref):
        spec, _ = serial_ref
        state_dir = str(tmp_path / "state")
        DistribCoordinator(spec, state_dir=state_dir, machines=2).run()
        other = _spec(N_HOMES, seed=99)
        with pytest.raises(SubmissionMismatch):
            DistribCoordinator(
                other, state_dir=state_dir, machines=2, resume=True
            ).run()


class TestMonitorIntegration:
    def test_machine_telemetry_dirs_newest_epoch(self, clean_distrib):
        state_dir, _, _ = clean_distrib
        dirs = machine_telemetry_dirs(state_dir)
        assert len(dirs) == 2
        for path in dirs:
            assert os.path.basename(path) == "telemetry-0001"
            assert os.path.isdir(path)
