"""End-to-end observability for the FIAT pipeline (zero-dependency).

Production operation of FIAT (ROADMAP north star) needs evidence of
what the pipeline did and what it cost: which events were dropped and
why, how long the bucket heuristic / classifier inference / proof
verification actually take, and whether a single humanness proof can be
followed from sensor sampling to the proxy decision it backed.

This package provides that layer without touching behaviour:

``repro.obs.registry``
    Counters, gauges and fixed-bucket histograms with labels; snapshot,
    delta, merge; Prometheus text rendering; label-cardinality cap.
``repro.obs.tracing``
    Deterministic (seeded, wall-clock-free) trace-ID minting and span
    records.
``repro.obs.timing``
    ``perf_counter`` profiling timers feeding latency histograms.
``repro.obs.exporter``
    JSONL audit/event stream writer and snapshot files.
``repro.obs.report``
    The ``fiat-repro obs-report`` text dashboard.
``repro.obs.handle``
    The injectable :class:`Observability` handle carried on
    :attr:`repro.core.config.FiatConfig.obs`.
``repro.obs.mergetree``
    Exact (rational-sum) hierarchical merging of snapshots — the
    shard → group → fleet tree reduction behind the fleet aggregate.
``repro.obs.trajectory``
    The committed perf trajectory: bench-history recording, the
    regression gate, and the ``fiat-repro bench-report`` trend view.

The invariant every consumer relies on: with observability enabled or
disabled, ``FiatProxy.decision_log()`` is byte-identical on the same
seeded scenario.
"""

from .exporter import (
    JsonlAuditSink,
    MemoryAuditSink,
    events_for_trace,
    load_snapshot,
    read_audit,
    save_snapshot,
    write_bench_snapshot,
)
from .handle import NULL_OBS, Observability
from .mergetree import SnapshotAccumulator, SnapshotMergeTree, merge_snapshots
from .registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    CounterView,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from .report import render_report, render_trace
from .timing import TIMING_SAMPLE_INTERVAL_S, LatencyTimer
from .tracing import Span, TraceIdMinter

__all__ = [
    "Observability",
    "NULL_OBS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Histogram",
    "CounterView",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "TraceIdMinter",
    "Span",
    "LatencyTimer",
    "TIMING_SAMPLE_INTERVAL_S",
    "JsonlAuditSink",
    "MemoryAuditSink",
    "read_audit",
    "events_for_trace",
    "save_snapshot",
    "load_snapshot",
    "write_bench_snapshot",
    "render_report",
    "render_trace",
    "SnapshotAccumulator",
    "SnapshotMergeTree",
    "merge_snapshots",
]
