"""Extension bench (§7 future work): SHAP-style feature attributions.

The paper proposes using SHAP alongside permutation importance to
verify feature effectiveness.  This bench computes sampling Shapley
values for the WyzeCam-DE classifier and checks the two attribution
methods agree on the paper's two key findings: protocol/direction/TLS
features carry the signal, destination-IP octets carry none.
"""

import numpy as np

from repro import ml
from repro.features import FEATURE_NAMES, event_labels, events_to_matrix

from benchmarks._helpers import print_table


def test_extension_shapley_attribution(benchmark, labeled_event_sets):
    events = labeled_event_sets[("WyzeCam", "DE")]
    X = ml.StandardScaler().fit_transform(events_to_matrix(events))
    y = event_labels(events)
    model = ml.BernoulliNB().fit(X, y)

    shap = benchmark.pedantic(
        lambda: ml.sampling_shapley_importance(
            model, X, y, scoring=ml.manual_f1_scorer("manual"), n_permutations=16, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    perm = ml.permutation_importance(
        model, X, y, scoring=ml.manual_f1_scorer("manual"), n_repeats=15, seed=0
    )

    shap_ranked = ml.rank_features(shap["shapley_mean"], FEATURE_NAMES)
    perm_ranked = ml.rank_features(perm["importances_mean"], FEATURE_NAMES)

    print_table(
        "Extension — Shapley vs permutation attribution (top 6 each)",
        ("rank", "Shapley feature", "value", "permutation feature", "value"),
        [
            (
                i + 1,
                shap_ranked[i][0],
                f"{shap_ranked[i][1]:.4f}",
                perm_ranked[i][0],
                f"{perm_ranked[i][1]:.4f}",
            )
            for i in range(6)
        ],
    )

    shap_by_name = dict(shap_ranked)
    # dst-IP octets: negligible attribution under both methods.
    ip_values = [v for name, v in shap_by_name.items() if "dst-ip" in name]
    # sampling Shapley is noisy per feature; the *aggregate* attribution
    # of the 20 addressing octets must stay negligible
    assert abs(float(np.mean(ip_values))) < 0.02
    assert max(abs(v) for v in ip_values) < 0.08

    # Agreement: substantial overlap between the two top-10 sets.
    shap_top = {name for name, _ in shap_ranked[:10]}
    perm_top = {name for name, _ in perm_ranked[:10]}
    assert len(shap_top & perm_top) >= 3
