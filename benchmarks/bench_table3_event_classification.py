"""Table 3: unpredictable-manual-event classification per device-location.

Five-fold cross-validated precision / recall / F1 of the manual class
for NCC and BernoulliNB on each of the 13 device-location datasets.
Paper: F1 > 0.9 for EchoDot3 / Blink / WyzeCam / HomeMini, < 0.8 for
Google Home, VPN locations (DE/JP) slightly better than US.
"""

import numpy as np

from repro import ml
from repro.features import event_labels, events_to_matrix

from benchmarks._helpers import TABLE3_DATASETS, print_table


def _cv_prf(estimator, X, y, positive="manual", n_splits=5, seed=0):
    splitter = ml.StratifiedKFold(n_splits=n_splits, shuffle=True, seed=seed)
    precisions, recalls, f1s = [], [], []
    for train, test in splitter.split(X, y):
        model = ml.clone(estimator).fit(X[train], y[train])
        p, r, f = ml.precision_recall_f1(y[test], model.predict(X[test]), positive)
        precisions.append(p)
        recalls.append(r)
        f1s.append(f)
    return float(np.mean(precisions)), float(np.mean(recalls)), float(np.mean(f1s))


def test_table3_event_classification(benchmark, labeled_event_sets):
    datasets = {}
    for key, events in labeled_event_sets.items():
        X = ml.StandardScaler().fit_transform(events_to_matrix(events))
        datasets[key] = (X, event_labels(events))

    def run_bnb_once():
        X, y = datasets[("EchoDot4", "US")]
        return _cv_prf(ml.BernoulliNB(), X, y)

    benchmark.pedantic(run_bnb_once, rounds=1, iterations=1)

    rows = []
    f1_by_model = {"ncc": [], "bnb": []}
    for device, location in TABLE3_DATASETS:
        X, y = datasets[(device, location)]
        ncc = _cv_prf(ml.NearestCentroidClassifier(metric="euclidean"), X, y)
        bnb = _cv_prf(ml.BernoulliNB(), X, y)
        f1_by_model["ncc"].append(ncc[2])
        f1_by_model["bnb"].append(bnb[2])
        rows.append(
            (
                f"{device}-{location}",
                f"{ncc[0]:.2f}",
                f"{ncc[1]:.2f}",
                f"{ncc[2]:.2f}",
                f"{bnb[0]:.2f}",
                f"{bnb[1]:.2f}",
                f"{bnb[2]:.2f}",
            )
        )
    print_table(
        "Table 3 — manual-event classification, 5-fold CV "
        "(paper F1: 0.76-0.99 NCC, 0.77-0.99 BernoulliNB)",
        ("device-loc", "NCC P", "NCC R", "NCC F1", "BNB P", "BNB R", "BNB F1"),
        rows,
    )

    # Paper band: mean F1 around 0.85-0.95 for both deployed models.
    assert np.mean(f1_by_model["ncc"]) > 0.75
    assert np.mean(f1_by_model["bnb"]) > 0.75
    # Every individual dataset stays usable (paper worst: 0.76).
    assert min(f1_by_model["bnb"]) > 0.6
