"""Streaming proxy core: packet-at-a-time processing, vectorized hot paths.

The package behind ``FiatConfig(streaming=True)``:

* :mod:`~repro.stream.binmatch` — NumPy flow-bucket / IAT-bin primitives
  shared by the engine, the bulk bootstrap learner and the offline
  labelling pass (one bin-matching implementation for all three);
* :mod:`~repro.stream.grouper` — incremental 5-second-gap event grouping
  (events emitted as they close, flush at end of capture);
* :mod:`~repro.stream.batch` — batched first-N event classification
  (one ML predict call for many closed events);
* :mod:`~repro.stream.engine` — the windowed engine wiring it all into
  :class:`~repro.core.proxy.FiatProxy`, under the contract that the
  decision log stays **byte-identical** to the scalar path.
"""

from .batch import classify_events_batch
from .binmatch import KeyInterner, quantize_iat_array
from .engine import StreamingEngine
from .grouper import IncrementalEventGrouper

__all__ = [
    "StreamingEngine",
    "IncrementalEventGrouper",
    "classify_events_batch",
    "KeyInterner",
    "quantize_iat_array",
]
