"""Unit tests for the FIAT proxy pipeline."""

import numpy as np
import pytest

from repro.core import FiatConfig, FiatProxy, HumanValidationService, train_event_classifier
from repro.crypto import pair
from repro.net import TrafficClass
from repro.quic import LAN_PATH, Transport
from repro.sensors import HumannessValidator
from repro.testbed import APP_PACKAGES, CloudDirectory, Location, Phone, profile_for
from repro.testbed.household import render_event
from repro.core.client import FiatApp
from tests.conftest import make_packet


@pytest.fixture
def proxy_stack(echodot_events):
    phone_ks, proxy_ks = pair("phone", "proxy")
    validation = HumanValidationService(
        proxy_ks, validator=HumannessValidator(n_train_per_class=150, seed=0).fit()
    )
    classifiers = {
        "EchoDot4": train_event_classifier(profile_for("EchoDot4"), echodot_events),
        "SP10": train_event_classifier(profile_for("SP10")),
    }
    proxy = FiatProxy(
        config=FiatConfig(bootstrap_s=0.0),
        dns=None,
        classifiers=classifiers,
        validation=validation,
        app_for_device=dict(APP_PACKAGES),
    )
    app = FiatApp(phone_ks, "fiat-pairing", "phone-1", LAN_PATH, Transport.QUIC_0RTT, seed=0)
    return proxy, app, Phone(seed=1)


def _manual_packets(device, start, seed=0):
    profile = profile_for(device)
    cloud = CloudDirectory(seed=5)
    endpoints = {
        s: cloud.endpoint(profile.vendor, s, Location.US) for s in profile.manual.services()
    }
    return render_event(
        profile,
        profile.manual,
        start,
        TrafficClass.MANUAL,
        "192.168.1.10",
        endpoints,
        np.random.default_rng(seed),
        event_id=f"{device}-manual-x",
    )


class TestBootstrapAndRules:
    def test_bootstrap_allows_everything(self):
        proxy = FiatProxy(
            config=FiatConfig(bootstrap_s=100.0),
            dns=None,
            classifiers={},
            validation=HumanValidationService(
                pair("a", "b")[1], validator=HumannessValidator(n_train_per_class=60).fit()
            ),
            app_for_device={},
        )
        for t in range(0, 90, 10):
            assert proxy.process(make_packet(timestamp=float(t)))
        assert proxy.rules is None

    def test_learned_flow_allowed_after_bootstrap(self):
        proxy = FiatProxy(
            config=FiatConfig(bootstrap_s=50.0),
            dns=None,
            classifiers={},
            validation=HumanValidationService(
                pair("a", "b")[1], validator=HumannessValidator(n_train_per_class=60).fit()
            ),
            app_for_device={},
        )
        for t in range(0, 50, 10):
            proxy.process(make_packet(timestamp=float(t)))
        assert proxy.process(make_packet(timestamp=50.0))
        assert proxy.rules is not None and len(proxy.rules) == 1


class TestManualEnforcement:
    def test_manual_without_proof_blocked(self, proxy_stack):
        proxy, _, _ = proxy_stack
        packets = _manual_packets("SP10", start=10.0)
        allowed = [proxy.process(p) for p in packets]
        proxy.flush()
        # rule device: decision on packet 1, everything dropped
        assert not any(allowed)
        decision = proxy.decisions[-1]
        assert decision.predicted_manual and decision.blocked
        assert proxy.alerts

    def test_manual_with_human_proof_allowed(self, proxy_stack):
        proxy, app, phone = proxy_stack
        interaction = phone.interact("SP10", 9.0, human=True, intensity=1.2)
        attempt = app.authenticate(interaction, now=9.0)
        proxy.receive_auth(attempt.wire, now=9.1)
        packets = _manual_packets("SP10", start=10.0)
        allowed = [proxy.process(p) for p in packets]
        proxy.flush()
        assert all(allowed)
        assert proxy.decisions[-1].human_backed is True

    def test_non_human_proof_still_blocked(self, proxy_stack):
        proxy, app, phone = proxy_stack
        interaction = phone.interact("SP10", 9.0, human=False)
        attempt = app.authenticate(interaction, now=9.0)
        proxy.receive_auth(attempt.wire, now=9.1)
        packets = _manual_packets("SP10", start=10.0)
        allowed = [proxy.process(p) for p in packets]
        proxy.flush()
        assert not any(allowed)

    def test_ml_device_first_n_allowed_then_blocked(self, proxy_stack):
        proxy, _, _ = proxy_stack
        packets = _manual_packets("EchoDot4", start=10.0, seed=4)
        if len(packets) <= 5:
            packets = _manual_packets("EchoDot4", start=10.0, seed=7)
        allowed = [proxy.process(p) for p in packets]
        proxy.flush()
        decision = proxy.decisions[-1]
        if decision.predicted_manual:
            # first N-1 pass, the rest dropped: command cannot complete
            assert all(allowed[:4])
            assert not any(allowed[5:])

    def test_unknown_device_fails_open(self, proxy_stack):
        proxy, _, _ = proxy_stack
        packets = _manual_packets("WyzeCam", start=10.0)  # no classifier registered
        allowed = [proxy.process(p) for p in packets]
        proxy.flush()
        assert all(allowed)


class TestLockout:
    def test_repeated_violations_lock_device(self, proxy_stack):
        proxy, _, _ = proxy_stack
        for i in range(3):
            for p in _manual_packets("SP10", start=10.0 + 20.0 * i, seed=i):
                proxy.process(p)
        assert proxy.is_locked("SP10")
        assert any("lockout" in a.reason for a in proxy.alerts)
        # Everything from the locked device is now dropped, even rules.
        assert not proxy.process(make_packet(timestamp=100.0, device="SP10"))

    def test_unlock_restores(self, proxy_stack):
        proxy, _, _ = proxy_stack
        for i in range(3):
            for p in _manual_packets("SP10", start=10.0 + 20.0 * i, seed=i):
                proxy.process(p)
        proxy.unlock("SP10")
        assert not proxy.is_locked("SP10")


class TestDecisionLog:
    def test_non_manual_event_logged_allowed(self, proxy_stack):
        proxy, _, _ = proxy_stack
        profile = profile_for("EchoDot4")
        cloud = CloudDirectory(seed=6)
        endpoints = {
            s: cloud.endpoint(profile.vendor, s, Location.US)
            for s in profile.control_noise.services()
        }
        packets = render_event(
            profile,
            profile.control_noise,
            0.0,
            TrafficClass.CONTROL,
            "192.168.1.10",
            endpoints,
            np.random.default_rng(3),
            event_id="EchoDot4-control-x",
        )
        for p in packets:
            proxy.process(p)
        proxy.flush()
        decision = proxy.decisions[-1]
        assert decision.truth == "control"
        assert decision.n_packets == len(packets)

    def test_decisions_for_filters(self, proxy_stack):
        proxy, _, _ = proxy_stack
        for p in _manual_packets("SP10", start=0.0):
            proxy.process(p)
        proxy.flush()
        assert all(d.device == "SP10" for d in proxy.decisions_for("SP10"))
        assert proxy.decisions_for("EchoDot4") == []


class TestPreStartGuard:
    """Packets stamped before the proxy started are dropped, not learned."""

    def _proxy(self, start_time=100.0):
        return FiatProxy(
            config=FiatConfig(bootstrap_s=50.0),
            dns=None,
            classifiers={},
            validation=HumanValidationService(
                pair("a", "b")[1], validator=HumannessValidator(n_train_per_class=60).fit()
            ),
            app_for_device={},
            start_time=start_time,
        )

    def test_pre_start_packet_dropped_and_counted(self):
        proxy = self._proxy(start_time=100.0)
        assert not proxy.process(make_packet(timestamp=10.0))
        assert not proxy.process(make_packet(timestamp=50.0))
        assert proxy.health["pre_start_packets"] == 2
        assert proxy.n_dropped == 2
        # the predictor never saw the skewed packets
        assert proxy._predictor.to_state()["n_observed"] == 0

    def test_single_health_alert_for_a_burst(self):
        proxy = self._proxy(start_time=100.0)
        for t in (0.0, 1.0, 2.0):
            proxy.process(make_packet(timestamp=t))
        health_alerts = [a for a in proxy.alerts if a.kind == "health"]
        assert len(health_alerts) == 1
        assert "before proxy start" in health_alerts[0].reason

    def test_jitter_within_tolerance_is_learned(self):
        # The household simulator stamps packets with sub-second jitter
        # around t=0; those must pass the guard and feed the predictor.
        proxy = self._proxy(start_time=100.0)
        assert proxy.process(make_packet(timestamp=100.0 - 0.5))
        assert proxy.health["pre_start_packets"] == 0
        assert proxy._predictor.to_state()["n_observed"] == 1

    def test_exact_tolerance_boundary(self):
        proxy = self._proxy(start_time=100.0)
        assert proxy.process(make_packet(timestamp=99.0))  # == start - tolerance
        assert not proxy.process(make_packet(timestamp=99.0 - 1e-6))
