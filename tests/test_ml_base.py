"""Unit tests for the estimator foundations."""

import numpy as np
import pytest

from repro.ml import (
    BernoulliNB,
    KNeighborsClassifier,
    NearestCentroidClassifier,
    check_X,
    check_Xy,
    clone,
)


class TestValidation:
    def test_check_x_promotes_1d(self):
        assert check_X([1.0, 2.0]).shape == (1, 2)

    def test_check_x_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_X([[1.0, float("nan")]])

    def test_check_x_rejects_empty(self):
        with pytest.raises(ValueError):
            check_X(np.empty((0, 3)))

    def test_check_xy_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            check_Xy([[1.0], [2.0]], [0])

    def test_check_xy_rejects_2d_y(self):
        with pytest.raises(ValueError, match="1-D"):
            check_Xy([[1.0]], [[0]])


class TestParamsAndClone:
    def test_get_params(self):
        est = NearestCentroidClassifier(metric="manhattan")
        assert est.get_params() == {"metric": "manhattan"}

    def test_set_params(self):
        est = KNeighborsClassifier()
        est.set_params(n_neighbors=9)
        assert est.n_neighbors == 9

    def test_set_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            KNeighborsClassifier().set_params(bogus=1)

    def test_clone_is_unfitted(self):
        est = BernoulliNB(alpha=0.5)
        est.fit([[0.0], [1.0]], [0, 1])
        fresh = clone(est)
        assert fresh.alpha == 0.5
        assert fresh.feature_log_prob_ is None

    def test_repr_contains_params(self):
        assert "alpha=2.0" in repr(BernoulliNB(alpha=2.0))


class TestScore:
    def test_score_is_accuracy(self):
        est = NearestCentroidClassifier(metric="euclidean")
        X = np.array([[0.0], [0.1], [10.0], [10.1]])
        y = np.array([0, 0, 1, 1])
        est.fit(X, y)
        assert est.score(X, y) == 1.0
