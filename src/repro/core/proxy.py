"""FIAT's server-side IoT proxy (paper §5.4, Figure 4).

The proxy sits on-path for all home IoT traffic (ARP spoofing + NFQUEUE
in the paper's prototype; here it is fed packets in timestamp order) and
runs the access-control pipeline of Figure 4:

1. **Bootstrap** (first 20 minutes): all traffic is allowed while the
   bucket heuristic learns recurring flows; at the end the recurring
   buckets are frozen into an allow-rule table.
2. **Rule match**: a packet hitting a rule is *predictable* — allowed.
3. **Event grouping**: rule misses join the device's current
   unpredictable event (5-second gap rule).
4. **Manual-event classification**: when the decision prefix is
   complete (first packet for rule devices, first N=5 packets for
   BernoulliNB devices) the event is classified.  Non-manual events are
   allowed in full.
5. **Humanness check**: manual events are allowed only when a fresh
   verified-human interaction with the device's companion app exists;
   otherwise the remaining event packets are dropped, the user is
   notified, and repeated violations within a short window disconnect
   the device (brute-force friction).

Every unpredictable event produces an :class:`EventDecision` record —
the proxy keeps logs of all unpredictable events and validations, which
§7 argues an attacker cannot scrub without breaking the TEE.
"""

from __future__ import annotations

import json
import logging
from dataclasses import asdict, dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

from ..events.grouping import UnpredictableEvent
from ..faults.breaker import BreakerState, CircuitBreaker
from ..net.dns import DnsTable
from ..net.packet import Packet, TrafficClass
from ..net.trace import Trace
from ..obs import TIMING_SAMPLE_INTERVAL_S, CounterView, MetricsRegistry, MetricsSnapshot
from ..predictability.buckets import BucketPredictor
from .classifier import EventClassifier
from .config import FiatConfig
from .interactions import DeviceInteractionGraph
from .rules import RuleTable
from .validation import HumanValidationService

__all__ = ["EventDecision", "Alert", "FiatProxy"]

logger = logging.getLogger(__name__)

#: Version of the serialised state schema (see :meth:`FiatProxy.snapshot`).
_STATE_VERSION = 1

#: Tolerated clock skew before the pre-start guard drops a packet,
#: seconds.  Capture jitter legitimately stamps the first packets of a
#: deployment a few milliseconds before t=0; only packets meaningfully
#: older than the proxy's start can poison the bucket tables.
PRE_START_TOLERANCE_S = 1.0


@dataclass
class EventDecision:
    """Outcome of one unpredictable event at the proxy."""

    device: str
    start: float
    n_packets: int
    predicted_manual: bool
    human_backed: Optional[bool]  # None when the check was not needed
    action: str  # "allow" | "drop"
    truth: str  # ground-truth class (evaluation only; unused by logic)
    event_id: Optional[str] = None
    #: which degraded-mode policy produced this decision, if any
    #: ("classifier-fallback:..." / "validation-outage:...")
    degraded: Optional[str] = None

    @property
    def blocked(self) -> bool:
        """Whether the event's tail was dropped."""
        return self.action == "drop"


@dataclass
class Alert:
    """A user-facing notification: a security breach or a health event."""

    device: str
    timestamp: float
    reason: str
    #: "security" (potential breach) or "health" (component state change)
    kind: str = "security"


@dataclass
class _OpenEvent:
    packets: List[Packet] = field(default_factory=list)
    decided: bool = False
    allow: bool = True
    predicted_manual: bool = False
    human_backed: Optional[bool] = None
    degraded: Optional[str] = None
    #: observability-only fields — never serialised into the decision log
    trace_id: str = ""
    proof_trace: str = ""

    @property
    def last_time(self) -> float:
        return self.packets[-1].timestamp if self.packets else 0.0


class FiatProxy:
    """The in-home FIAT proxy: learn, then authorize or drop."""

    def __init__(
        self,
        config: FiatConfig,
        dns: Optional[DnsTable],
        classifiers: Dict[str, EventClassifier],
        validation: HumanValidationService,
        app_for_device: Dict[str, str],
        start_time: float = 0.0,
        interactions: Optional["DeviceInteractionGraph"] = None,
        device_ips: Optional[Dict[str, str]] = None,
    ) -> None:
        self.config = config
        self.classifiers = classifiers
        self.validation = validation
        self.app_for_device = app_for_device
        #: §7 "Complex Scenarios": DAG of allowed device-to-device control
        self.interactions = interactions
        self.device_ips = device_ips or {}
        self._obs = config.observability
        self._start_time = start_time
        self._pre_start_alerted = False
        self._bootstrap_end = start_time + config.bootstrap_s
        self._predictor = BucketPredictor(
            definition=config.flow_definition,
            dns=dns,
            resolution=config.iat_resolution,
            obs=self._obs,
        )
        self._rules: Optional[RuleTable] = None
        self._next_refresh: Optional[float] = None
        # Hot-path timing gate: next simulated timestamp at which one
        # packet's bucket lookup / rule match is timed.  Pinned to +inf
        # when observability is off, so the disabled fast path pays a
        # single always-false float compare per packet.
        self._next_sample_at = 0.0 if self._obs.enabled else float("inf")
        #: optional streaming front-end (see :meth:`attach_engine`)
        self._engine = None
        self._open: Dict[str, _OpenEvent] = {}
        self._violations: Dict[str, List[float]] = {}
        self._locked: Dict[str, float] = {}
        self.decisions: List[EventDecision] = []
        self.alerts: List[Alert] = []
        self.n_allowed = 0
        self.n_dropped = 0
        #: circuit breakers guarding flaky components (lazily per device)
        self._validation_breaker = CircuitBreaker(
            "validation",
            failure_threshold=config.breaker_failure_threshold,
            recovery_timeout_s=config.breaker_recovery_s,
            obs=self._obs,
        )
        self._classifier_breakers: Dict[str, CircuitBreaker] = {}
        #: operational health counters surfaced next to decisions/alerts.
        #: Historically a plain dict; now a registry-backed view with the
        #: same read surface (``proxy.health["classifier_errors"]``).
        #: With observability disabled the counters land in a private
        #: registry so state never leaks through the shared NULL handle.
        self._health_registry = (
            self._obs.registry if self._obs.enabled else MetricsRegistry()
        )
        self.health: CounterView = CounterView(
            self._health_registry,
            "proxy_health_total",
            label="kind",
            initial=(
                "classifier_errors",
                "classifier_unavailable",
                "validation_errors",
                "validation_unavailable",
                "degraded_decisions",
                "auth_dropped_breaker_open",
                "pre_start_packets",
                "recovered_open_events",
            ),
        )

    # -- streaming front-end (repro.stream) ----------------------------------------

    def attach_engine(self, engine) -> None:
        """Route :meth:`ingest` through a streaming engine.

        The engine buffers packets and processes them in vectorized
        windows; every state-reading or state-mutating proxy operation
        calls :meth:`_barrier` first, so outside the hot path the proxy
        behaves — byte-for-byte — as if every packet had gone through
        :meth:`process` individually.
        """
        self._engine = engine

    def _barrier(self) -> None:
        """Drain any packets the attached engine has buffered."""
        if self._engine is not None:
            self._engine.flush_pending()

    def ingest(self, packet: Packet) -> Optional[bool]:
        """Feed one packet via the attached engine, or :meth:`process`.

        With an engine attached the verdict is deferred to the next
        window flush and ``None`` is returned; without one this is
        exactly :meth:`process`.
        """
        if self._engine is not None:
            self._engine.feed(packet)
            return None
        return self.process(packet)

    # -- circuit breakers ---------------------------------------------------------

    @property
    def breakers(self) -> Dict[str, CircuitBreaker]:
        """All breakers by component name (``validation``, ``classifier:X``)."""
        named = {"validation": self._validation_breaker}
        for device, breaker in self._classifier_breakers.items():
            named[f"classifier:{device}"] = breaker
        return named

    def _breaker_for(self, device: str) -> CircuitBreaker:
        breaker = self._classifier_breakers.get(device)
        if breaker is None:
            breaker = CircuitBreaker(
                f"classifier:{device}",
                failure_threshold=self.config.breaker_failure_threshold,
                recovery_timeout_s=self.config.breaker_recovery_s,
                obs=self._obs,
            )
            self._classifier_breakers[device] = breaker
        return breaker

    def _health_alert(self, device: str, now: float, reason: str) -> None:
        self.alerts.append(Alert(device=device, timestamp=now, reason=reason, kind="health"))

    def _validation_failed(self, now: float) -> None:
        self.health["validation_errors"] += 1
        if self._validation_breaker.record_failure(now):
            self._health_alert("*", now, "validation-service circuit opened")

    def _validation_succeeded(self, now: float) -> None:
        if self._validation_breaker.record_success(now):
            self._health_alert("*", now, "validation-service recovered (probe succeeded)")

    # -- auth channel -------------------------------------------------------------

    def receive_auth(self, wire: bytes, now: float):
        """Feed an authentication message from the FIAT app.

        Returns the registered
        :class:`~repro.core.validation.ValidatedInteraction`, or ``None``
        when the channel rejected the message or the validation service
        is down (breaker open or the call failed).  The return value is
        the proxy's acknowledgement: the app's reliable sender
        retransmits until it sees one.
        """
        self._barrier()
        if not self._validation_breaker.allow_request(now):
            self.health["auth_dropped_breaker_open"] += 1
            return None
        try:
            result = self.validation.ingest(wire, now)
        except Exception:
            logger.debug("validation ingest failed at t=%.3f", now, exc_info=True)
            self._validation_failed(now)
            return None
        self._validation_succeeded(now)
        return result

    # -- lockout ------------------------------------------------------------------

    def is_locked(self, device: str) -> bool:
        """Whether the device is disconnected pending user action."""
        return device in self._locked

    def unlock(self, device: str) -> None:
        """User manually re-authorizes a disconnected device."""
        self._barrier()
        self._locked.pop(device, None)
        self._violations.pop(device, None)

    def _record_violation(self, device: str, now: float) -> None:
        history = self._violations.setdefault(device, [])
        history.append(now)
        cutoff = now - self.config.lockout_window_s
        history[:] = [t for t in history if t >= cutoff]
        if len(history) >= self.config.lockout_threshold:
            self._locked[device] = now
            self.alerts.append(
                Alert(device=device, timestamp=now, reason="brute-force lockout")
            )

    # -- event lifecycle ----------------------------------------------------------

    def _decision_prefix(self, device: str) -> int:
        classifier = self.classifiers.get(device)
        if classifier is not None and classifier.uses_rules:
            return 1
        return self.config.first_n_packets

    def _classify_manual(self, device: str, classifier, prefix, now: float, hint=None):
        """Classify behind the device's circuit breaker.

        Returns ``(manual, degraded)``: ``degraded`` is ``None`` for a
        healthy classification, else the fallback policy applied.  With
        the classifier broken only the predictability rules remain, so
        the configurable fallback either treats every unpredictable
        event as manual-shaped (``assume-manual``, needs a humanness
        proof) or waves it through (``allow``).

        ``hint`` is a precomputed classification from the streaming
        engine's batched predict call; it replaces only the model
        inference itself — the breaker bookkeeping around it runs
        unchanged, so breaker state evolves exactly as in the scalar
        path.
        """
        breaker = self._breaker_for(device)
        if breaker.allow_request(now):
            try:
                manual = bool(classifier.is_manual(prefix)) if hint is None else hint
            except Exception:
                logger.debug(
                    "classifier for %s failed at t=%.3f", device, now, exc_info=True
                )
                self.health["classifier_errors"] += 1
                if breaker.record_failure(now):
                    self._health_alert(device, now, "classifier circuit opened")
            else:
                if breaker.record_success(now):
                    self._health_alert(
                        device, now, "classifier recovered (probe succeeded)"
                    )
                return manual, None
        else:
            self.health["classifier_unavailable"] += 1
        if self.config.classifier_fallback == "allow":
            return False, "classifier-fallback:allow"
        return True, "classifier-fallback:assume-manual"

    def _human_backed(self, app: str, now: float):
        """Query the validation service behind its circuit breaker.

        Returns ``(human, degraded)``; when the service is down the
        configured outage policy decides: ``fail-closed`` treats the
        event as unbacked (drop), ``fail-open`` as backed (allow).
        """
        if self._validation_breaker.allow_request(now):
            try:
                human = bool(self.validation.has_recent_human(app, now))
            except Exception:
                logger.debug(
                    "humanness query for %s failed at t=%.3f", app, now, exc_info=True
                )
                self._validation_failed(now)
            else:
                self._validation_succeeded(now)
                return human, None
        else:
            self.health["validation_unavailable"] += 1
        if self.config.validation_outage_policy == "fail-open":
            return True, "validation-outage:fail-open"
        return False, "validation-outage:fail-closed"

    def _decide(self, device: str, event: _OpenEvent, now: float, hint=None) -> None:
        if self._obs.enabled:
            t0 = perf_counter()
            self._decide_inner(device, event, now, hint)
            self._obs.observe(
                "proxy_decide_latency_ms", (perf_counter() - t0) * 1000.0
            )
        else:
            self._decide_inner(device, event, now, hint)

    def _decide_inner(self, device: str, event: _OpenEvent, now: float, hint=None) -> None:
        classifier = self.classifiers.get(device)
        if classifier is None:
            # Unknown device: fail open on classification (the paper's
            # production vision downloads a model per identified device).
            event.decided = True
            event.allow = True
            event.predicted_manual = False
            return
        prefix = event.packets[: self._decision_prefix(device)]
        manual, degraded = self._classify_manual(device, classifier, prefix, now, hint)
        event.decided = True
        event.predicted_manual = manual
        event.degraded = degraded
        if not manual:
            event.allow = True
            return
        # §7 extension: a manual-shaped command originating from another
        # in-home device is allowed when an interaction-DAG edge covers
        # the (controller, target) pair (e.g. Alexa -> smart light).
        if self.interactions is not None and any(
            self.interactions.allows_packet(p, self.device_ips) for p in prefix
        ):
            event.allow = True
            event.human_backed = None
            return
        app = self.app_for_device.get(device, "")
        human, human_degraded = self._human_backed(app, now)
        if self._obs.enabled and human and human_degraded is None:
            # Link the decision back to the proof that authorized it.
            # Audit-only read, after the breaker-guarded check succeeded.
            backing = self.validation.recent_human_interaction(app, now)
            if backing is not None:
                event.proof_trace = backing.trace_id
        if human_degraded is not None:
            event.degraded = (
                human_degraded if degraded is None else f"{degraded}+{human_degraded}"
            )
        event.human_backed = human
        event.allow = human
        if not human:
            if event.degraded is not None and "validation-outage" in event.degraded:
                # Degraded drop: the proxy fails closed because it cannot
                # check humanness — report as a health event and do not
                # count it toward the brute-force lockout (it is not
                # evidence of an attack).
                self._health_alert(
                    device,
                    now,
                    "manual event dropped: validation unavailable (fail-closed)",
                )
            else:
                self.alerts.append(
                    Alert(
                        device=device,
                        timestamp=now,
                        reason="unverified manual traffic dropped",
                    )
                )
                self._record_violation(device, now)

    def _close_event(self, device: str, event: _OpenEvent) -> None:
        if not event.packets:
            return
        if not event.decided:
            self._decide(device, event, event.last_time)
        truth = UnpredictableEvent(packets=event.packets).majority_class()
        truth_label = "manual" if truth in (TrafficClass.MANUAL, TrafficClass.ATTACK) else truth.value
        if event.degraded is not None:
            self.health["degraded_decisions"] += 1
        action = "allow" if event.allow else "drop"
        self.decisions.append(
            EventDecision(
                device=device,
                start=event.packets[0].timestamp,
                n_packets=len(event.packets),
                predicted_manual=event.predicted_manual,
                human_backed=event.human_backed,
                action=action,
                truth=truth_label,
                event_id=event.packets[0].event_id,
                degraded=event.degraded,
            )
        )
        if self._obs.enabled:
            self._obs.inc("proxy_decisions_total", action=action)
            self._sync_packet_counters()
            self._obs.emit(
                "proxy.decision",
                t=event.last_time,
                trace=event.trace_id,
                proof_trace=event.proof_trace,
                device=device,
                action=action,
                predicted_manual=event.predicted_manual,
                human_backed=event.human_backed,
                degraded=event.degraded,
            )

    # -- main entry point ---------------------------------------------------------

    def process(self, packet: Packet) -> bool:
        """Process one packet; return ``True`` when it is forwarded."""
        now = packet.timestamp
        device = packet.device
        obs = self._obs

        # Pre-bootstrap guard: a packet stamped before the proxy even
        # started can only come from a skewed clock or a stale capture.
        # Learning from it would poison the bucket tables (and, after a
        # recovery, could rewind rule state), so drop it instead of
        # silently learning and surface a health alert on the first one.
        if now < self._start_time - PRE_START_TOLERANCE_S:
            self.health["pre_start_packets"] += 1
            if not self._pre_start_alerted:
                self._pre_start_alerted = True
                self._health_alert(
                    device,
                    now,
                    "packet timestamped before proxy start (clock skew?) — dropped",
                )
            self.n_dropped += 1
            if obs.enabled:
                obs.inc("proxy_drops_total", reason="pre-start")
            return False

        # Bootstrap: learn, allow everything.  Packet totals sync into the
        # registry lazily (see _sync_packet_counters) — a per-packet
        # counter write here would dominate the sub-microsecond fast path.
        # The shared sim-time sampling gate (see __init__) feeds the
        # bucket-lookup histogram here and the rule-match histogram below.
        if now < self._bootstrap_end:
            self.n_allowed += 1
            if now >= self._next_sample_at:
                self._next_sample_at = now + TIMING_SAMPLE_INTERVAL_S
                self._predictor.timed_observe(packet)
            else:
                self._predictor.observe(packet)
            return True
        if self._rules is None:
            self._rules = RuleTable.from_predictor(self._predictor)
            self._next_refresh = (
                now + self.config.rule_refresh_s
                if self.config.rule_refresh_s is not None
                else None
            )

        # Drift adaptation (§7): keep learning, refresh and age rules.
        if self.config.rule_refresh_s is not None:
            self._predictor.observe(packet)
            if self._next_refresh is not None and now >= self._next_refresh:
                self._rules.merge_from_predictor(
                    self._predictor, now, max_idle_s=self.config.rule_ttl_s
                )
                if self.config.rule_ttl_s is not None:
                    self._rules.expire_stale(now, self.config.rule_ttl_s)
                self._next_refresh = now + self.config.rule_refresh_s

        if self.is_locked(device):
            self.n_dropped += 1
            if obs.enabled:
                obs.inc("proxy_drops_total", reason="locked")
            return False

        if now >= self._next_sample_at:
            self._next_sample_at = now + TIMING_SAMPLE_INTERVAL_S
            t0 = perf_counter()
            matched = self._rules.matches(packet)
            obs.observe("rule_match_latency_ms", (perf_counter() - t0) * 1000.0)
        else:
            matched = self._rules.matches(packet)
        if matched:
            self.n_allowed += 1
            return True

        return self._process_unpredictable(packet, now, device, obs)

    def _process_unpredictable(
        self, packet: Packet, now: float, device: str, obs, hint=None
    ) -> bool:
        """Event-path tail of :meth:`process`: a packet that missed the rules.

        Factored out so the streaming engine can route its precomputed
        rule misses here directly (with an optional batched-classification
        ``hint``); behaviour is identical to the scalar path.
        """
        # Unpredictable: event grouping per device.
        event = self._open.get(device)
        if event is not None and now - event.last_time > self.config.event_gap_s:
            self._close_event(device, event)
            event = None
        if event is None:
            event = _OpenEvent(trace_id=obs.mint_trace("event"))
            self._open[device] = event
            if obs.enabled:
                obs.emit("proxy.event_open", t=now, trace=event.trace_id, device=device)
        event.packets.append(packet)

        if not event.decided and len(event.packets) >= self._decision_prefix(device):
            # Decide exactly once the decision prefix is complete.  For
            # rule devices this happens on the first packet, *before*
            # forwarding it (the proxy delays packets via NFQUEUE), so a
            # one-packet plug command can still be blocked.
            self._decide(device, event, now, hint)

        if event.decided:
            allowed = event.allow
        else:
            allowed = True  # within the allowed first-N prefix
        if allowed:
            self.n_allowed += 1
        else:
            self.n_dropped += 1
            if obs.enabled:
                obs.inc("proxy_drops_total", reason="manual-unverified")
        return allowed

    def run_trace(self, trace: Trace) -> None:
        """Convenience: process a whole trace in timestamp order."""
        if self._engine is not None:
            self._engine.feed_many(trace)
        else:
            for packet in trace:
                self.process(packet)
        self.flush()

    def flush(self) -> None:
        """Close all open events (end of capture).

        Events close in chronological order of their first packet (ties
        broken by device name), not dict insertion order: insertion order
        is an accident of history that a crash/restart resets, and the
        decision log must be identical either way.
        """
        self._barrier()
        for device, event in sorted(
            self._open.items(),
            key=lambda kv: (kv[1].packets[0].timestamp if kv[1].packets else 0.0, kv[0]),
        ):
            self._close_event(device, event)
        self._open.clear()
        self._sync_packet_counters()

    def _sync_packet_counters(self) -> None:
        """Publish the per-packet tallies into the registry.

        ``n_allowed``/``n_dropped`` are plain-int counters on the packet
        fast path; the registry copies (``proxy_packets_total``) are
        refreshed here — at event close, flush and snapshot time —
        instead of per packet, keeping instrumentation overhead off the
        rule-match path.
        """
        if self._obs.enabled:
            registry = self._obs.registry
            registry.set_counter("proxy_packets_total", self.n_allowed, action="allow")
            registry.set_counter("proxy_packets_total", self.n_dropped, action="drop")

    # -- evaluation helpers -------------------------------------------------------

    @property
    def rules(self) -> Optional[RuleTable]:
        """The frozen rule table (``None`` while bootstrapping)."""
        return self._rules

    def decisions_for(self, device: str) -> List[EventDecision]:
        """Decision records of one device."""
        self._barrier()
        return [d for d in self.decisions if d.device == device]

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Snapshot of the registry backing this proxy's metrics.

        With observability enabled this is the shared session registry;
        otherwise it is the private registry holding only the
        :attr:`health` counters.
        """
        self._barrier()
        self._sync_packet_counters()
        return self._health_registry.snapshot()

    def decision_log(self) -> bytes:
        """Canonical JSON serialisation of all decision records.

        Stable field order and float repr make the log byte-comparable:
        two runs with the same seeds and the same fault plan must
        produce identical bytes (the determinism contract of
        ``repro.faults``).
        """
        self._barrier()
        return json.dumps(
            [asdict(d) for d in self.decisions], sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    # -- durable state (repro.recovery) -------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Serialise every security-relevant piece of proxy state.

        JSON-native and versioned; the inverse is :meth:`restore`.  Pure
        read — taking a snapshot never perturbs behaviour, so
        ``decision_log()`` is byte-identical whether or not snapshots
        were cut mid-run (the behaviour-neutrality contract the
        recovery property tests enforce).  With a streaming engine
        attached the pending window is drained first, so the snapshot
        captures the state of everything fed so far.

        Covers: learned bucket tables, the frozen rule table, open
        unpredictable events (packets included), lockout/violation
        state, circuit breakers, decision/alert logs, packet tallies
        and the operational :attr:`health` counters.  Config,
        classifiers, the validation service (serialised separately via
        its own ``to_state``) and the DNS table are process-local and
        re-injected on restore.
        """
        self._barrier()
        return {
            "v": _STATE_VERSION,
            "start_time": self._start_time,
            "bootstrap_end": self._bootstrap_end,
            "pre_start_alerted": self._pre_start_alerted,
            "next_refresh": self._next_refresh,
            "predictor": self._predictor.to_state(),
            "rules": None if self._rules is None else self._rules.to_state(),
            "open": {
                device: {
                    "packets": [p.to_dict() for p in event.packets],
                    "decided": event.decided,
                    "allow": event.allow,
                    "predicted_manual": event.predicted_manual,
                    "human_backed": event.human_backed,
                    "degraded": event.degraded,
                    "trace_id": event.trace_id,
                    "proof_trace": event.proof_trace,
                }
                for device, event in self._open.items()
            },
            "violations": {d: list(ts) for d, ts in self._violations.items()},
            "locked": dict(self._locked),
            "decisions": [asdict(d) for d in self.decisions],
            "alerts": [asdict(a) for a in self.alerts],
            "n_allowed": self.n_allowed,
            "n_dropped": self.n_dropped,
            "health": self.health.as_dict(),
            "breakers": {
                "validation": self._validation_breaker.to_state(),
                "classifiers": {
                    device: breaker.to_state()
                    for device, breaker in self._classifier_breakers.items()
                },
            },
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Load a :meth:`snapshot` into this (freshly constructed) proxy.

        The proxy must have been built with the same config, classifiers
        and validation service wiring; ``restore`` replaces only the
        volatile security state a process death would lose.
        """
        self._barrier()
        if state.get("v") != _STATE_VERSION:
            raise ValueError(f"unsupported FiatProxy state version: {state.get('v')!r}")
        self._start_time = float(state["start_time"])
        self._bootstrap_end = float(state["bootstrap_end"])
        self._pre_start_alerted = bool(state["pre_start_alerted"])
        next_refresh = state["next_refresh"]
        self._next_refresh = None if next_refresh is None else float(next_refresh)
        dns = self._predictor.dns
        self._predictor = BucketPredictor.from_state(
            state["predictor"], dns=dns, obs=self._obs  # type: ignore[arg-type]
        )
        rules_state = state["rules"]
        self._rules = (
            None
            if rules_state is None
            else RuleTable.from_state(rules_state, dns=dns)  # type: ignore[arg-type]
        )
        self._open = {}
        for device, encoded in state["open"].items():  # type: ignore[union-attr]
            event = _OpenEvent(
                packets=[Packet.from_dict(p) for p in encoded["packets"]],
                decided=bool(encoded["decided"]),
                allow=bool(encoded["allow"]),
                predicted_manual=bool(encoded["predicted_manual"]),
                human_backed=encoded["human_backed"],
                degraded=encoded["degraded"],
                trace_id=str(encoded.get("trace_id", "")),
                proof_trace=str(encoded.get("proof_trace", "")),
            )
            self._open[device] = event
        self._violations = {
            d: [float(t) for t in ts]
            for d, ts in state["violations"].items()  # type: ignore[union-attr]
        }
        self._locked = {
            d: float(t) for d, t in state["locked"].items()  # type: ignore[union-attr]
        }
        self.decisions = [
            EventDecision(**d) for d in state["decisions"]  # type: ignore[union-attr]
        ]
        self.alerts = [Alert(**a) for a in state["alerts"]]  # type: ignore[union-attr]
        self.n_allowed = int(state["n_allowed"])
        self.n_dropped = int(state["n_dropped"])
        for key, value in state.get("health", {}).items():  # type: ignore[union-attr]
            self.health[key] = value
        breakers: Dict[str, object] = state["breakers"]  # type: ignore[assignment]
        self._validation_breaker = CircuitBreaker.from_state(
            breakers["validation"], obs=self._obs  # type: ignore[index,arg-type]
        )
        self._classifier_breakers = {
            device: CircuitBreaker.from_state(encoded, obs=self._obs)
            for device, encoded in breakers["classifiers"].items()  # type: ignore[index,union-attr]
        }

    def reconcile_after_crash(self, now: float) -> int:
        """Close events left open by a crash, fail-closed.

        A crash interrupts open unpredictable events mid-decision: the
        proxy cannot know which of their packets were forwarded during
        the outage, so recovery must not let an incomplete manual-shaped
        event ride through on pre-crash optimism.  Events that were
        still undecided, or decided manual, are closed as ``drop`` with
        a ``recovery:fail-closed`` marker; events positively classified
        non-manual close with their (complete) allow decision.  None of
        the forced drops count toward the brute-force lockout — a crash
        is not evidence of an attack.  Returns the number of events
        reconciled.
        """
        self._barrier()
        reconciled = 0
        for device, event in sorted(self._open.items()):
            if not event.packets:
                continue
            if not event.decided or event.predicted_manual:
                event.decided = True
                event.allow = False
                event.degraded = (
                    "recovery:fail-closed"
                    if event.degraded is None
                    else f"{event.degraded}+recovery:fail-closed"
                )
            self.health["recovered_open_events"] += 1
            self._close_event(device, event)
            reconciled += 1
        self._open.clear()
        if reconciled:
            self._health_alert(
                "*", now, f"crash recovery: {reconciled} open event(s) reconciled fail-closed"
            )
        return reconciled
