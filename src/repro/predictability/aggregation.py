"""IoT-Inspector-style 5-second aggregation analysis (paper §2.2).

The IoT Inspector dataset only exposes five-second aggregates (per flow:
sum of packet sizes in each window) rather than individual packets.  The
paper notes this coarsening *reduces* measurable predictability: one
unpredictable packet poisons the byte-sum of its entire window.  This
module reproduces the analysis by converting a packet trace (or a
pre-aggregated corpus) into window records and running the same bucket
heuristic over ``<flow, window byte-sum>`` tuples.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Tuple

from ..net.dns import DnsTable
from ..net.flows import FlowDefinition, flow_key
from ..net.packet import Packet
from ..net.trace import Trace
from .buckets import quantize_iat

__all__ = ["WindowRecord", "aggregate_trace", "windowed_predictability"]

#: IoT Inspector reporting granularity, seconds.
WINDOW_SECONDS = 5.0


class WindowRecord:
    """One flow's aggregate within one window: ``(flow, window, bytes)``."""

    __slots__ = ("flow", "window_index", "total_bytes", "n_packets")

    def __init__(self, flow: Tuple[Hashable, ...], window_index: int) -> None:
        self.flow = flow
        self.window_index = window_index
        self.total_bytes = 0
        self.n_packets = 0

    def add(self, packet: Packet) -> None:
        """Accumulate one packet into the window."""
        self.total_bytes += packet.size
        self.n_packets += 1


def _window_flow_key(
    packet: Packet, definition: FlowDefinition, dns: Optional[DnsTable]
) -> Tuple[Hashable, ...]:
    """Flow identity for aggregation: the packet flow key minus the size.

    Aggregation happens per flow (endpoints + protocol); the byte-sum then
    plays the role packet size plays at packet granularity.
    """
    key = flow_key(packet, definition, dns)
    return key[:-1]  # both Classic and PortLess keys end with the size


def aggregate_trace(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
    dns: Optional[DnsTable] = None,
    window: float = WINDOW_SECONDS,
) -> List[WindowRecord]:
    """Collapse a packet trace into per-flow five-second window records."""
    dns = dns if dns is not None else trace.dns
    records: Dict[Tuple[Hashable, int], WindowRecord] = {}
    origin = trace.start
    for packet in trace:
        flow = _window_flow_key(packet, definition, dns)
        index = int(math.floor((packet.timestamp - origin) / window))
        slot = records.get((flow, index))
        if slot is None:
            slot = WindowRecord(flow, index)
            records[(flow, index)] = slot
        slot.add(packet)
    return sorted(records.values(), key=lambda r: (r.window_index,))


def windowed_predictability(
    trace: Trace,
    definition: FlowDefinition = FlowDefinition.PORTLESS,
    dns: Optional[DnsTable] = None,
    window: float = WINDOW_SECONDS,
) -> float:
    """Fraction of predictable windows under the §2.1 heuristic.

    Windows of a flow are bucketed by ``<flow, byte-sum>``; the
    inter-arrival time between windows of the same bucket (in units of
    windows) must repeat for the windows to be predictable — the direct
    analogue of the packet-level heuristic at 5-second granularity.
    """
    records = aggregate_trace(trace, definition, dns=dns, window=window)
    if not records:
        return 0.0

    bucket_last: Dict[Tuple[Hashable, ...], int] = {}
    bucket_prev_index: Dict[Tuple[Hashable, ...], int] = {}
    gap_counts: Dict[Tuple[Hashable, ...], Dict[int, int]] = defaultdict(dict)
    record_gap: Dict[int, Tuple[Tuple[Hashable, ...], int]] = {}
    bucket_records: Dict[Tuple[Hashable, ...], List[int]] = defaultdict(list)
    record_pos: Dict[int, int] = {}

    for i, record in enumerate(records):
        bucket = record.flow + (record.total_bytes,)
        record_pos[i] = len(bucket_records[bucket])
        bucket_records[bucket].append(i)
        if bucket in bucket_last:
            gap = record.window_index - bucket_last[bucket]
            gap_bin = quantize_iat(float(gap), 1.0)
            record_gap[i] = (bucket, gap_bin)
            counts = gap_counts[bucket]
            counts[gap_bin] = counts.get(gap_bin, 0) + 1
        bucket_last[bucket] = record.window_index
        bucket_prev_index[bucket] = i

    predictable = [False] * len(records)
    for i, (bucket, gap_bin) in record_gap.items():
        if gap_counts[bucket].get(gap_bin, 0) >= 2:
            predictable[i] = True
            position = record_pos[i]
            if position > 0:
                predictable[bucket_records[bucket][position - 1]] = True

    return sum(predictable) / len(records)
