"""Model persistence: save/load trained classifiers as JSON documents.

The paper's production vision (§7) has FIAT *download* "one model per
IoT device and software version" — which requires a serialisation
format.  This module persists the deployed model family (BernoulliNB,
NearestCentroid, DecisionTree) together with its StandardScaler as a
single JSON document: human-auditable, diff-able, and free of pickle's
code-execution hazards (a downloaded model must be pure data).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .naive_bayes import BernoulliNB
from .nearest import NearestCentroidClassifier
from .preprocessing import StandardScaler
from .tree import DecisionTreeClassifier, _Node

__all__ = ["save_model", "load_model", "MODEL_FORMAT_VERSION"]

MODEL_FORMAT_VERSION = 1


def _array(values: Any) -> list:
    return np.asarray(values).tolist()


def _encode_tree_node(node: _Node) -> Dict[str, Any]:
    record: Dict[str, Any] = {"counts": _array(node.counts)}
    if not node.is_leaf:
        record.update(
            {
                "feature": node.feature,
                "threshold": node.threshold,
                "left": _encode_tree_node(node.left),
                "right": _encode_tree_node(node.right),
            }
        )
    return record


def _decode_tree_node(record: Dict[str, Any]) -> _Node:
    node = _Node(counts=np.asarray(record["counts"], dtype=float))
    if "feature" in record:
        node.feature = int(record["feature"])
        node.threshold = float(record["threshold"])
        node.left = _decode_tree_node(record["left"])
        node.right = _decode_tree_node(record["right"])
    return node


def _encode_estimator(model: Any) -> Dict[str, Any]:
    if isinstance(model, BernoulliNB):
        if model.feature_log_prob_ is None:
            raise ValueError("cannot save an unfitted BernoulliNB")
        return {
            "type": "bernoulli-nb",
            "params": {"alpha": model.alpha, "binarize": model.binarize},
            "classes": _array(model.classes_),
            "feature_log_prob": _array(model.feature_log_prob_),
            "neg_log_prob": _array(model._neg_log_prob),
            "class_log_prior": _array(model.class_log_prior_),
        }
    if isinstance(model, NearestCentroidClassifier):
        if model.centroids_ is None:
            raise ValueError("cannot save an unfitted NearestCentroidClassifier")
        return {
            "type": "nearest-centroid",
            "params": {"metric": model.metric},
            "classes": _array(model.classes_),
            "centroids": _array(model.centroids_),
        }
    if isinstance(model, DecisionTreeClassifier):
        if model._root is None:
            raise ValueError("cannot save an unfitted DecisionTreeClassifier")
        return {
            "type": "decision-tree",
            "params": model.get_params(),
            "classes": _array(model.classes_),
            "root": _encode_tree_node(model._root),
        }
    raise TypeError(f"unsupported model type {type(model).__name__}")


def _decode_estimator(record: Dict[str, Any]) -> Any:
    kind = record["type"]
    classes = np.asarray(record["classes"])
    if kind == "bernoulli-nb":
        model = BernoulliNB(**record["params"])
        model.classes_ = classes
        model.feature_log_prob_ = np.asarray(record["feature_log_prob"])
        model._neg_log_prob = np.asarray(record["neg_log_prob"])
        model.class_log_prior_ = np.asarray(record["class_log_prior"])
        return model
    if kind == "nearest-centroid":
        model = NearestCentroidClassifier(**record["params"])
        model.classes_ = classes
        model.centroids_ = np.asarray(record["centroids"])
        return model
    if kind == "decision-tree":
        model = DecisionTreeClassifier(**record["params"])
        model.classes_ = classes
        model._root = _decode_tree_node(record["root"])
        return model
    raise ValueError(f"unknown model type {kind!r}")


def save_model(
    model: Any,
    scaler: Optional[StandardScaler] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> str:
    """Serialise a fitted model (+ optional scaler) to a JSON string."""
    document: Dict[str, Any] = {
        "fiat-model-version": MODEL_FORMAT_VERSION,
        "estimator": _encode_estimator(model),
        "metadata": metadata or {},
    }
    if scaler is not None:
        if scaler.mean_ is None:
            raise ValueError("cannot save an unfitted StandardScaler")
        document["scaler"] = {"mean": _array(scaler.mean_), "scale": _array(scaler.scale_)}
    return json.dumps(document, sort_keys=True)


def load_model(document: str) -> Tuple[Any, Optional[StandardScaler], Dict[str, Any]]:
    """Inverse of :func:`save_model`: ``(model, scaler, metadata)``."""
    data = json.loads(document)
    version = data.get("fiat-model-version")
    if version != MODEL_FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {version!r}")
    model = _decode_estimator(data["estimator"])
    scaler: Optional[StandardScaler] = None
    if "scaler" in data:
        scaler = StandardScaler()
        scaler.mean_ = np.asarray(data["scaler"]["mean"])
        scaler.scale_ = np.asarray(data["scaler"]["scale"])
    return model, scaler, data.get("metadata", {})
