"""Tests for the fleet telemetry plane and live monitor.

The telemetry contract has two halves and these tests pin both:

* *observability*: a run with a state dir leaves CRC-framed progress
  frames behind — run-start / progress / final on the runner channel,
  home-start / home-end with per-phase timings on the worker channels —
  and :class:`FleetMonitor` folds them into an accurate live snapshot
  (status, progress, rate, phase digests, slowest-shard attribution);
* *non-interference*: telemetry is strictly out-of-band.  The fleet
  report is byte-identical with telemetry on or off, and wall-clock
  phase timings never enter ``HomeResult.to_dict()`` (the checkpoint
  digest input).
"""

import os
import signal

import pytest

from repro.fleet import (
    FleetInterrupted,
    FleetRunner,
    FleetSpec,
    FleetMonitor,
    HomeSpec,
    TelemetryWriter,
    generate_fleet,
    load_latest_aggregate,
    run_home,
    telemetry_dir_for,
)
from repro.fleet.telemetry import (
    RUN_CHANNEL,
    emit_worker_frame,
    load_frames,
    read_frames,
)
from repro.fleet.worker import run_home_traced


def _spec(n=3, seed=0, **kwargs):
    kwargs.setdefault("n_manual", 3)
    kwargs.setdefault("n_non_manual", 4)
    kwargs.setdefault("n_attacks", 2)
    return generate_fleet(n, seed=seed, **kwargs)


@pytest.fixture(scope="module")
def finished_run(tmp_path_factory):
    """One completed 3-home serial run with a state dir, plus its report."""
    state_dir = str(tmp_path_factory.mktemp("fleet") / "state")
    spec = _spec(3, seed=0)
    report = FleetRunner(spec, jobs=1, state_dir=state_dir).run()
    return state_dir, spec, report


class TestFrames:
    def test_run_channel_frames(self, finished_run):
        state_dir, spec, _ = finished_run
        frames = read_frames(
            os.path.join(telemetry_dir_for(state_dir), RUN_CHANNEL)
        )
        kinds = [frame["kind"] for frame in frames]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "final"
        assert kinds.count("progress") == len(spec.homes)
        start = frames[0]
        assert start["planned"] == len(spec.homes)
        assert start["fleet"] == spec.name
        final = frames[-1]
        assert final["status"] == "done"
        assert final["completed"] == len(spec.homes)

    def test_worker_frames_carry_phase_timings(self, finished_run):
        state_dir, spec, _ = finished_run
        frames = load_frames(telemetry_dir_for(state_dir))
        ends = [frame for frame in frames if frame["kind"] == "home-end"]
        assert len(ends) == len(spec.homes)
        for frame in ends:
            assert frame["status"] == "ok"
            phases = frame["phases"]
            assert {"setup", "simulate", "condense", "total"} <= set(phases)
            assert phases["total"] == pytest.approx(
                sum(v for k, v in phases.items() if k != "total")
            )

    def test_torn_tail_is_tolerated(self, finished_run, tmp_path):
        state_dir, spec, _ = finished_run
        source = os.path.join(telemetry_dir_for(state_dir), RUN_CHANNEL)
        torn = tmp_path / RUN_CHANNEL
        torn.write_bytes(
            open(source, "rb").read() + b"deadbeef {torn mid-write"
        )
        frames = read_frames(str(torn))
        assert [f["kind"] for f in frames][-1] == "final"

    def test_worker_channel_is_per_pid(self, tmp_path):
        emit_worker_frame(str(tmp_path), "home-start", home="h1")
        assert os.path.exists(tmp_path / f"worker-{os.getpid()}.jsonl")


class TestMonitor:
    def test_snapshot_of_finished_run(self, finished_run):
        state_dir, spec, report = finished_run
        snap = FleetMonitor(state_dir).poll()
        assert snap.status == "done"
        assert snap.completed == len(spec.homes)
        assert snap.planned == len(spec.homes)
        assert snap.ok == len(spec.homes) and snap.failed == 0
        assert snap.fraction_done == 1.0
        assert snap.n_runs == 1
        assert not snap.in_flight
        assert {"setup", "simulate", "condense", "total"} <= set(snap.phases)
        assert snap.phases["simulate"].n == len(spec.homes)
        # Slowest attribution: totals match the per-home sum, dominant
        # phase is a real phase (never the synthetic "total" row).
        assert snap.slowest
        for home, total, dominant in snap.slowest:
            assert total > 0
            assert dominant in ("setup", "simulate", "condense")

    def test_monitor_accepts_telemetry_dir_itself(self, finished_run):
        state_dir, spec, _ = finished_run
        snap = FleetMonitor(telemetry_dir_for(state_dir)).poll()
        assert snap.completed == len(spec.homes)

    def test_render_mentions_progress_and_phases(self, finished_run):
        state_dir, spec, _ = finished_run
        text = FleetMonitor(state_dir).render()
        assert "DONE" in text
        assert f"{len(spec.homes)}/{len(spec.homes)} homes" in text
        assert "simulate" in text and "slowest" in text

    def test_empty_dir_is_idle(self, tmp_path):
        monitor = FleetMonitor(str(tmp_path / "nothing"))
        assert monitor.poll().status == "idle"
        assert "no telemetry frames yet" in monitor.render()

    def test_silent_running_channel_goes_stale(self, tmp_path):
        """A SIGKILLed run leaves no final frame; once its frames stop
        ageing the monitor must say *stale*, not *running*."""
        directory = str(tmp_path / "telemetry")
        with TelemetryWriter(directory) as writer:
            writer.emit("run-start", fleet="f", planned=10, jobs=1, backend="serial")
            writer.emit(
                "progress", completed=4, ok=4, failed=0,
                elapsed_s=2.0, homes_per_sec=2.0,
            )
        monitor = FleetMonitor(directory, stale_after_s=30.0)
        fresh = monitor.poll()
        assert fresh.status == "running"
        assert fresh.eta_s == pytest.approx(3.0)  # 6 remaining / 2 per sec
        import time

        later = monitor.poll(now=time.time() + 120.0)
        assert later.status == "stale"


class TestNonInterference:
    def test_report_bytes_identical_with_telemetry_on_off(self, tmp_path):
        spec = _spec(3, seed=1)
        plain = FleetRunner(spec, jobs=1).run()
        with_telemetry = FleetRunner(
            spec, jobs=1, state_dir=str(tmp_path / "state")
        ).run()
        without = FleetRunner(
            spec, jobs=1, state_dir=str(tmp_path / "state2"), telemetry=False
        ).run()
        assert with_telemetry.to_json() == plain.to_json()
        assert without.to_json() == plain.to_json()
        assert not os.path.isdir(telemetry_dir_for(str(tmp_path / "state2")))

    def test_timings_never_enter_result_dict(self):
        result = run_home(_spec(1, seed=5).homes[0])
        assert result.timings  # measured...
        assert {"setup", "simulate", "condense", "total"} <= set(result.timings)
        assert "timings" not in result.to_dict()  # ...but out-of-band

    def test_run_home_traced_without_telemetry_is_passthrough(self):
        home = _spec(1, seed=5).homes[0]
        assert (
            run_home_traced(home).to_dict() == run_home(home).to_dict()
        )

    def test_run_home_traced_emits_frames(self, tmp_path):
        home = _spec(1, seed=5).homes[0]
        run_home_traced(home, telemetry_dir=str(tmp_path))
        frames = load_frames(str(tmp_path))
        assert [f["kind"] for f in frames] == ["home-start", "home-end"]
        assert frames[0]["home"] == frames[1]["home"] == home.home_id
        assert frames[1]["status"] == "ok"

    def test_run_home_traced_reports_errors_then_raises(self, tmp_path):
        base = _spec(3, seed=1)
        poisoned = base.homes[1].to_dict()
        poisoned["poison"] = "raise"
        home = HomeSpec.from_dict(poisoned)
        with pytest.raises(RuntimeError, match="poison home"):
            run_home_traced(home, telemetry_dir=str(tmp_path))
        frames = load_frames(str(tmp_path))
        assert frames[-1]["kind"] == "home-end"
        assert frames[-1]["status"] == "error"
        assert "poison" in frames[-1]["error"]


class _StopDuringStream:
    """Spec-stream wrapper that requests a stop after ``stop_at`` homes."""

    def __init__(self, inner: FleetSpec, stop_at: int):
        from repro.fleet import MemorySpecStream

        self.inner = MemorySpecStream(inner)
        self.stop_at = stop_at
        self.runner = None
        self.name = self.inner.name
        self.seed = self.inner.seed
        self.n_homes = self.inner.n_homes
        self.digest = self.inner.digest

    def iter_homes(self):
        for idx, home in enumerate(self.inner.iter_homes()):
            if idx == self.stop_at and self.runner is not None:
                self.runner._stop_requested = True
            yield home


class TestInterruptTelemetry:
    def test_interrupted_run_flushes_final_frame(self, tmp_path):
        """SIGTERM-style stop: the final frame records the partial
        coverage and the monitor shows INTERRUPTED, not a hang."""
        state_dir = str(tmp_path / "state")
        spec = _spec(4, seed=2)
        stream = _StopDuringStream(spec, stop_at=2)
        runner = FleetRunner(stream, jobs=1, state_dir=state_dir)
        stream.runner = runner
        with pytest.raises(FleetInterrupted):
            runner.run()
        frames = read_frames(
            os.path.join(telemetry_dir_for(state_dir), RUN_CHANNEL)
        )
        final = frames[-1]
        assert final["kind"] == "final"
        assert final["status"] == "interrupted"
        assert final["completed"] == 2
        snap = FleetMonitor(state_dir).poll()
        assert snap.status == "interrupted"
        assert snap.completed == 2 and snap.planned == 4

    def test_resumed_run_reports_carried_over_homes(self, tmp_path):
        state_dir = str(tmp_path / "state")
        spec = _spec(4, seed=2)
        stream = _StopDuringStream(spec, stop_at=2)
        runner = FleetRunner(stream, jobs=1, state_dir=state_dir)
        stream.runner = runner
        with pytest.raises(FleetInterrupted):
            runner.run()
        FleetRunner(spec, jobs=1, state_dir=state_dir, resume=True).run()
        snap = FleetMonitor(state_dir).poll()
        assert snap.status == "done"
        assert snap.n_runs == 2
        assert snap.resumed_from == 2
        assert snap.completed == 4


class TestProfileSlowest:
    def test_profile_artifacts_written(self, tmp_path):
        state_dir = str(tmp_path / "state")
        FleetRunner(
            _spec(2, seed=3), jobs=1, state_dir=state_dir, profile_slowest=True
        ).run()
        profiles = [n for n in os.listdir(state_dir) if n.startswith("profile-")]
        assert any(n.endswith(".prof") for n in profiles)
        texts = [n for n in profiles if n.endswith(".txt")]
        assert texts
        body = open(os.path.join(state_dir, texts[0])).read()
        assert "cumulative" in body

    def test_profiling_does_not_change_report(self, tmp_path):
        spec = _spec(2, seed=3)
        plain = FleetRunner(spec, jobs=1).run()
        profiled = FleetRunner(
            spec, jobs=1, state_dir=str(tmp_path / "s"), profile_slowest=True
        ).run()
        assert profiled.to_json() == plain.to_json()


class TestLoadLatestAggregate:
    def test_reconstructs_finished_run(self, finished_run):
        state_dir, spec, report = finished_run
        agg = load_latest_aggregate(state_dir)
        assert agg.completed == len(spec.homes)
        assert agg.n_ok == len(spec.homes)
        assert agg.merged.to_json() is not None
        assert agg.report().to_json() == report.to_json()

    def test_missing_state_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_latest_aggregate(str(tmp_path / "nope"))


class TestMonitorHardening:
    """A monitor must never traceback because its target is being torn down."""

    def test_missing_dir_reads_as_idle(self, tmp_path):
        monitor = FleetMonitor(str(tmp_path / "never-created"))
        snap = monitor.poll()
        assert snap.status == "idle"
        assert snap.n_frames == 0

    def test_directory_named_like_channel_is_skipped(self, finished_run):
        state_dir, _, _ = finished_run
        tdir = telemetry_dir_for(state_dir)
        evil = os.path.join(tdir, "not-a-file.jsonl")
        os.makedirs(evil, exist_ok=True)
        try:
            frames = load_frames(tdir)
            assert frames  # the real channels still read
            snap = FleetMonitor(state_dir).poll()
            assert snap.status == "done"
        finally:
            os.rmdir(evil)

    def test_truncated_channel_mid_watch(self, tmp_path, finished_run):
        import shutil

        state_dir, _, _ = finished_run
        tdir = str(tmp_path / "telemetry")
        shutil.copytree(telemetry_dir_for(state_dir), tdir)
        victim = os.path.join(tdir, RUN_CHANNEL)
        size = os.path.getsize(victim)
        with open(victim, "r+b") as handle:
            handle.truncate(size // 2)
        # a torn frame ends the readable prefix; no traceback, no crash
        snap = FleetMonitor(tdir).poll()
        assert snap.n_frames >= 0

    def test_epoch_suffixed_telemetry_dir_accepted(self, tmp_path):
        # distrib machines write into telemetry-NNNN dirs; FleetMonitor
        # must treat them as telemetry dirs, not state dirs
        tdir = str(tmp_path / "telemetry-0003")
        writer = TelemetryWriter(tdir, RUN_CHANNEL)
        writer.emit({"kind": "run-start", "planned": 1, "jobs": 1, "fleet": "x"})
        writer.close()
        snap = FleetMonitor(tdir).poll()
        assert snap.n_frames == 1


class TestMultiFleetMonitor:
    def test_sums_across_dirs(self, finished_run):
        from repro.fleet import MultiFleetMonitor

        state_dir, spec, _ = finished_run
        tdir = telemetry_dir_for(state_dir)
        monitor = MultiFleetMonitor([tdir, tdir])
        snap = monitor.poll()
        assert snap.status == "done"
        assert snap.completed == 2 * len(spec.homes)
        assert snap.planned == 2 * len(spec.homes)
        assert len(monitor.parts) == 2
        body = monitor.render(snap)
        assert "2 machine dir(s)" in body
        assert body.count(tdir) == 2

    def test_vanished_dir_is_merged_as_idle(self, tmp_path, finished_run):
        from repro.fleet import MultiFleetMonitor

        state_dir, spec, _ = finished_run
        tdir = telemetry_dir_for(state_dir)
        missing = str(tmp_path / "gone")
        monitor = MultiFleetMonitor([tdir, missing])
        snap = monitor.poll()  # must not traceback
        assert snap.completed == len(spec.homes)
        # one range done, one not heard from: the fleet is not "done"
        assert snap.status == "running"

    def test_callable_dirs_reresolved_each_poll(self, finished_run):
        from repro.fleet import MultiFleetMonitor

        state_dir, _, _ = finished_run
        tdir = telemetry_dir_for(state_dir)
        dirs = [tdir]
        monitor = MultiFleetMonitor(lambda: list(dirs))
        assert len(monitor.poll().in_flight) == 0
        assert len(monitor.parts) == 1
        dirs.append(tdir)  # a re-lease appeared
        monitor.poll()
        assert len(monitor.parts) == 2
