"""Unit tests for the packet model."""

import pytest

from repro.net import Direction, Packet, TrafficClass
from tests.conftest import make_packet


class TestPacketValidation:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            make_packet(size=-1)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="protocol"):
            make_packet(protocol="sctp")

    def test_port_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="ports"):
            make_packet(src_port=70000)

    def test_zero_size_allowed(self):
        assert make_packet(size=0).size == 0


class TestPacketDirections:
    def test_remote_ip_outbound(self):
        packet = make_packet(direction=Direction.OUTBOUND)
        assert packet.remote_ip == packet.dst_ip
        assert packet.device_ip == packet.src_ip

    def test_remote_ip_inbound(self):
        packet = make_packet(
            direction=Direction.INBOUND, src_ip="172.1.2.3", dst_ip="192.168.1.10"
        )
        assert packet.remote_ip == "172.1.2.3"
        assert packet.device_ip == "192.168.1.10"

    def test_remote_port(self):
        outbound = make_packet(direction=Direction.OUTBOUND, dst_port=443)
        assert outbound.remote_port == 443
        inbound = make_packet(direction=Direction.INBOUND, src_port=8883)
        assert inbound.remote_port == 8883

    def test_flipped(self):
        assert Direction.OUTBOUND.flipped() is Direction.INBOUND
        assert Direction.INBOUND.flipped() is Direction.OUTBOUND


class TestPacketHelpers:
    def test_is_tls(self):
        assert not make_packet(tls_version=0).is_tls
        assert make_packet(tls_version=12).is_tls

    def test_with_timestamp_shifts_only_time(self):
        packet = make_packet(timestamp=1.0, size=222)
        shifted = packet.with_timestamp(9.0)
        assert shifted.timestamp == 9.0
        assert shifted.size == 222

    def test_roundtrip_dict(self):
        packet = make_packet(
            timestamp=3.5,
            tcp_flags=24,
            tls_version=13,
            traffic_class=TrafficClass.MANUAL,
            event_id="e1",
        )
        assert Packet.from_dict(packet.to_dict()) == packet

    def test_from_dict_defaults(self):
        data = make_packet().to_dict()
        del data["tcp_flags"], data["tls_version"], data["event_id"]
        packet = Packet.from_dict(data)
        assert packet.tcp_flags == 0
        assert packet.tls_version == 0
        assert packet.event_id is None
