"""Attack scenarios against a FIAT-protected smart home (§5.1, §7).

Walks through the paper's threat model, one attacker at a time:

1. **Account compromise** — a remote attacker injects a command through
   the hijacked vendor account; no human proof exists -> blocked.
2. **Replay** — the attacker captured an old QUIC 0-RTT auth message and
   resends it verbatim alongside a new command -> the replay cache
   rejects the proof, the command is blocked.
3. **Brute force** — repeated injections hoping for a classifier miss ->
   after three violations the device is disconnected (lockout friction).
4. **Spyware piggyback** (§7) — spyware fires its command exactly while
   the user genuinely operates the app; real human motion exists, so
   FIAT (by design) cannot tell them apart -> the documented residual
   risk, still strictly harder than defeating SMS 2FA.

Run:  python examples/smart_home_defense.py
"""

from repro.core import FiatConfig, FiatSystem
from repro.net import TrafficClass
from repro.testbed import AccountCompromiseAttack, BruteForceAttack

DEVICE = "SP10"


def banner(text: str) -> None:
    print(f"\n{'=' * 70}\n{text}\n{'=' * 70}")


def run_packets(system: FiatSystem, packets) -> bool:
    """Feed an attack's packets to the proxy; True = command executed."""
    allowed = [system.proxy.process(p) for p in packets]
    system.proxy.flush()
    # The SP10 executes on its first packet: the command succeeds only
    # if every packet (incl. the first) went through.
    return all(allowed)


def main() -> None:
    system = FiatSystem([DEVICE], config=FiatConfig(bootstrap_s=0.0), seed=11)
    cloud = system.cloud
    clock = 1000.0

    banner("1. Account compromise: injected command, no human proof")
    attack = AccountCompromiseAttack(cloud, seed=1).launch(DEVICE, start=clock)
    executed = run_packets(system, attack.packets)
    print(f"command executed: {executed}   (expected: False — blocked)")
    system.proxy.unlock(DEVICE)

    banner("2. Replay: resending a captured 0-RTT auth message")
    # The user once sent a genuine proof; the attacker captured it.
    interaction = system.phone.interact(DEVICE, clock + 100.0, human=True, intensity=1.2)
    attempt = system.app.authenticate(interaction, now=clock + 100.0)
    system.proxy.receive_auth(attempt.wire, now=clock + 100.1)  # original: accepted
    # ... much later, the attacker replays the same wire bytes.
    replay_time = clock + 200.0
    system.proxy.receive_auth(attempt.wire, now=replay_time)
    attack = AccountCompromiseAttack(cloud, seed=2).launch(DEVICE, start=replay_time + 0.5)
    executed = run_packets(system, attack.packets)
    rejections = system.validation.receiver.rejections
    print(f"channel rejections so far: {rejections}")
    print(f"command executed: {executed}   (expected: False — replay rejected)")
    system.proxy.unlock(DEVICE)

    banner("3. Brute force: rapid-fire injections trigger lockout")
    burst = BruteForceAttack(cloud, seed=3).launch_burst(DEVICE, start=clock + 300.0, attempts=5)
    outcomes = [run_packets(system, event.packets) for event in burst]
    print(f"attempt outcomes: {outcomes}")
    print(f"device locked out: {system.proxy.is_locked(DEVICE)}   (expected: True)")
    print("alerts:", [a.reason for a in system.proxy.alerts[-3:]])
    system.proxy.unlock(DEVICE)

    banner("4. Spyware piggyback (§7): synced with a real user action")
    when = clock + 600.0
    # The user genuinely opens the app (e.g. to check the plug)...
    interaction = system.phone.interact(DEVICE, when - 0.5, human=True, intensity=1.2)
    attempt = system.app.authenticate(interaction, now=when - 0.5)
    system.proxy.receive_auth(attempt.wire, now=when - 0.4)
    # ...and the spyware fires its own command at that exact moment.
    attack = AccountCompromiseAttack(cloud, seed=4).launch(DEVICE, start=when)
    executed = run_packets(system, attack.packets)
    print(f"command executed: {executed}   (expected: True — the residual risk)")
    print("note: the attacker is confined to the moments the user interacts;")
    print("2FA without humanness would fall to a strictly weaker attacker.")


if __name__ == "__main__":
    main()
