"""Tests for the stable seed-spawn helper and its pipeline migration."""

import numpy as np
import pytest

from repro.util import spawn_seed


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(0, "cloud") == spawn_seed(0, "cloud")
        assert spawn_seed(7, "training", "EchoDot4") == spawn_seed(7, "training", "EchoDot4")

    def test_distinct_paths(self):
        assert spawn_seed(0, "cloud") != spawn_seed(0, "phone")
        assert spawn_seed(0, "training", "SP10") != spawn_seed(0, "training", "WP3")

    def test_distinct_roots(self):
        assert spawn_seed(0, "cloud") != spawn_seed(1, "cloud")

    def test_non_negative_int64(self):
        for root in (0, 1, 2**62, -5):
            value = spawn_seed(root, "x")
            assert 0 <= value < 2**63

    def test_usable_as_numpy_seed(self):
        rng = np.random.default_rng(spawn_seed(3, "anything"))
        assert 0.0 <= float(rng.random()) < 1.0

    def test_adjacent_roots_never_collide_across_components(self):
        """The regression the ``seed + k`` offsets failed.

        Under the offset convention, home ``i``'s phone stream
        (``i + 2``) equalled home ``i + 1``'s cloud stream (``i + 2``):
        adjacent-seed homes shared RNG streams across components.  The
        hash derivation must keep every (root, component) stream unique
        over a realistic fleet of roots.
        """
        components = ("cloud", "phone", "app", "validator", "system")
        seeds = [
            spawn_seed(root, component)
            for root in range(100)
            for component in components
        ]
        assert len(set(seeds)) == len(seeds)


class TestPipelineSeedDerivation:
    def test_adjacent_seed_systems_share_no_cloud_stream(self):
        """Two systems built from adjacent seeds draw unrelated clouds.

        Previously ``FiatSystem(seed=0)``'s phone (``seed + 2 = 2``) and
        ``FiatSystem(seed=1)``'s cloud (``seed + 1 = 2``) were seeded
        identically.  Derived component seeds must now be pairwise
        distinct across both systems.
        """
        from repro.util import spawn_seed

        derived = {
            (root, component): spawn_seed(root, component)
            for root in (0, 1)
            for component in ("cloud", "phone", "app", "validator")
        }
        values = list(derived.values())
        assert len(set(values)) == len(values)

    def test_system_construction_still_deterministic(self):
        from repro.core import FiatConfig, FiatSystem

        a = FiatSystem(["SP10"], config=FiatConfig(bootstrap_s=0.0), seed=5)
        b = FiatSystem(["SP10"], config=FiatConfig(bootstrap_s=0.0), seed=5)
        a.run_accuracy(n_manual=3, n_non_manual=4, n_attacks=2)
        b.run_accuracy(n_manual=3, n_non_manual=4, n_attacks=2)
        assert a.proxy.decision_log() == b.proxy.decision_log()

    def test_adjacent_seed_systems_diverge(self):
        """Adjacent-seed households draw unrelated cloud addressing.

        Rule-device *decisions* are policy-deterministic, so the
        rng-derived observable is the allocated endpoint pool.
        """
        from repro.core import FiatConfig, FiatSystem
        from repro.testbed import Location

        a = FiatSystem(["SP10"], config=FiatConfig(bootstrap_s=0.0), seed=0)
        b = FiatSystem(["SP10"], config=FiatConfig(bootstrap_s=0.0), seed=1)
        ips_a = a.cloud.endpoint("tp-link", "events", Location.US).ips
        ips_b = b.cloud.endpoint("tp-link", "events", Location.US).ips
        assert ips_a != ips_b
