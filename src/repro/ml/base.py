"""Estimator foundations for the mini-ML library.

The paper trains nine scikit-learn classifiers (Table 2); scikit-learn is
not available offline, so :mod:`repro.ml` re-implements them on NumPy
following the textbook algorithms.  This module provides the shared
estimator contract: ``fit(X, y)`` / ``predict(X)`` / ``score(X, y)``,
parameter introspection for cloning (needed by cross-validation), and
label handling utilities.
"""

from __future__ import annotations

import copy
import inspect
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Classifier", "clone", "check_Xy", "check_X"]


def check_X(X: Any) -> np.ndarray:
    """Coerce ``X`` to a 2-D float array, rejecting empty or NaN input."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise ValueError(f"X must be non-empty, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values")
    return X


def check_Xy(X: Any, y: Any) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce and validate a training pair ``(X, y)``."""
    X = check_X(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if len(y) != X.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {len(y)} entries")
    return X, y


class Classifier:
    """Base class for all classifiers in :mod:`repro.ml`.

    Subclasses implement :meth:`fit` and either :meth:`predict` or
    :meth:`predict_proba`.  Constructor parameters must be stored on
    ``self`` under their own names so :func:`clone` can re-instantiate
    an unfitted copy.
    """

    #: set by fit(): sorted unique class labels
    classes_: np.ndarray

    def fit(self, X: Any, y: Any) -> "Classifier":
        """Train on ``(X, y)``; returns ``self``."""
        raise NotImplementedError

    def predict(self, X: Any) -> np.ndarray:
        """Predict class labels; default argmax over predict_proba."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_proba(self, X: Any) -> np.ndarray:
        """Per-class probabilities; optional for hard classifiers."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement predict_proba"
        )

    def timed_predict(self, X: Any, obs: Any = None, **labels: Any) -> np.ndarray:
        """Predict, feeding inference latency into an observability handle.

        ``obs`` is an (optional) :class:`repro.obs.Observability`; when
        absent or disabled this is exactly :meth:`predict`.  Latency
        lands in the ``ml_predict_latency_ms`` histogram labelled with
        the concrete model class plus any caller-supplied labels.
        """
        if obs is None or not obs.enabled:
            return self.predict(X)
        t0 = perf_counter()
        out = self.predict(X)
        obs.observe(
            "ml_predict_latency_ms",
            (perf_counter() - t0) * 1000.0,
            model=type(self).__name__,
            **labels,
        )
        return out

    def score(self, X: Any, y: Any) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    def _store_classes(self, y: np.ndarray) -> np.ndarray:
        """Record sorted class labels; return per-sample class indices."""
        self.classes_, indices = np.unique(y, return_inverse=True)
        return indices

    # -- parameter introspection (for clone / hyper-parameter sweeps) -----------

    def get_params(self) -> Dict[str, Any]:
        """Constructor parameters and their current values."""
        signature = inspect.signature(type(self).__init__)
        names = [
            name
            for name, param in signature.parameters.items()
            if name != "self" and param.kind is not inspect.Parameter.VAR_KEYWORD
        ]
        return {name: getattr(self, name) for name in names}

    def set_params(self, **params: Any) -> "Classifier":
        """Update constructor parameters in place; returns ``self``."""
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(f"unknown parameter {name!r} for {type(self).__name__}")
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


def clone(estimator: Classifier) -> Classifier:
    """Unfitted copy of an estimator with identical constructor parameters."""
    params = {key: copy.deepcopy(value) for key, value in estimator.get_params().items()}
    return type(estimator)(**params)
