"""Attacker models from the paper's threat model (§5.1, §7).

All attackers are computationally bounded: they may compromise IoT
accounts, break into the home WiFi, and install user-space spyware on
the phone, but cannot break cryptography, fake OS-level sensor data, or
open TEEs.  Concretely each attack produces *manual-looking* IoT traffic
(ground-truth class :class:`~repro.net.packet.TrafficClass.ATTACK`)
with — crucially — no genuine human motion behind it:

* :class:`AccountCompromiseAttack` — remote command injection through a
  hijacked IoT/IFTTT account; no FIAT auth message exists at all.
* :class:`SpywareSyncAttack` — user-space spyware that watches for the
  companion app in the foreground and fires its command at that moment
  (the §7 "piggyback" attack, which FIAT cannot stop by design).
* :class:`ReplayAttack` — captures and resends a previous QUIC 0-RTT
  authentication message verbatim; defeated by the proxy's replay cache.
* :class:`BruteForceAttack` — repeated injection attempts in a short
  window, hoping to hit a classifier false negative; triggers the
  proxy's lockout friction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..net.packet import Packet, TrafficClass
from .cloud import CloudDirectory, Location
from .devices import DeviceProfile, profile_for
from .household import render_event

__all__ = [
    "AttackEvent",
    "AccountCompromiseAttack",
    "SpywareSyncAttack",
    "ReplayAttack",
    "BruteForceAttack",
]


@dataclass
class AttackEvent:
    """One injected command: packets plus attack metadata."""

    attack: str
    device: str
    start: float
    packets: List[Packet]
    #: A replayed auth-message wire blob, when the attack carries one.
    replayed_wire: Optional[bytes] = None
    #: Whether the attack is synchronised with a live user interaction.
    synchronized_with_user: bool = False


def _render_attack(
    profile: DeviceProfile,
    start: float,
    cloud: CloudDirectory,
    location: Location,
    rng: np.random.Generator,
    attack: str,
) -> List[Packet]:
    endpoints = {
        service: cloud.endpoint(profile.vendor, service, location)
        for service in profile.manual.services()
    }
    return render_event(
        profile,
        profile.manual,
        start,
        TrafficClass.ATTACK,
        device_ip="192.168.1.10",
        endpoints=endpoints,
        rng=rng,
        event_id=f"{profile.name}-{attack}-{start:.1f}",
    )


class AccountCompromiseAttack:
    """Remote attacker with a hijacked account injects device commands."""

    name = "account-compromise"

    def __init__(self, cloud: CloudDirectory, location: Location = Location.US, seed: int = 99) -> None:
        self.cloud = cloud
        self.location = location
        self._rng = np.random.default_rng(seed)

    def launch(self, device: Union[str, DeviceProfile], start: float) -> AttackEvent:
        """Inject one manual-shaped command with no human behind it."""
        profile = profile_for(device) if isinstance(device, str) else device
        packets = _render_attack(profile, start, self.cloud, self.location, self._rng, self.name)
        return AttackEvent(attack=self.name, device=profile.name, start=start, packets=packets)


class SpywareSyncAttack(AccountCompromiseAttack):
    """Spyware-timed injection while the user genuinely uses the app.

    The §7 piggyback: because real human motion accompanies the attack,
    FIAT's humanness validation passes and the attack succeeds — the
    paper's acknowledged residual risk (still strictly harder than
    defeating 2FA, which needs no such synchronisation).
    """

    name = "spyware-sync"

    def launch(self, device: Union[str, DeviceProfile], start: float) -> AttackEvent:
        event = super().launch(device, start)
        event.attack = self.name
        event.synchronized_with_user = True
        return event


class ReplayAttack(AccountCompromiseAttack):
    """Resends a previously captured authentication message verbatim."""

    name = "replay"

    def launch_with_wire(
        self, device: Union[str, DeviceProfile], start: float, captured_wire: bytes
    ) -> AttackEvent:
        """Inject a command and replay ``captured_wire`` as its "proof"."""
        event = super().launch(device, start)
        event.attack = self.name
        event.replayed_wire = captured_wire
        return event


class BruteForceAttack(AccountCompromiseAttack):
    """Rapid-fire injections hoping for a classifier false negative."""

    name = "brute-force"

    def launch_burst(
        self, device: Union[str, DeviceProfile], start: float, attempts: int = 8, gap_s: float = 20.0
    ) -> List[AttackEvent]:
        """Inject ``attempts`` commands ``gap_s`` seconds apart."""
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        events = []
        for i in range(attempts):
            event = super().launch(device, start + i * gap_s)
            event.attack = self.name
            events.append(event)
        return events
