"""Unit tests for classification metrics."""

import numpy as np
import pytest

from repro.ml import (
    accuracy_score,
    balanced_accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
)


class TestConfusionMatrix:
    def test_basic(self):
        matrix, labels = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert list(labels) == ["a", "b"]
        assert matrix.tolist() == [[1, 1], [0, 1]]

    def test_explicit_labels_order(self):
        matrix, labels = confusion_matrix([0, 1], [0, 1], labels=[1, 0])
        assert list(labels) == [1, 0]
        assert matrix.tolist() == [[1, 0], [0, 1]]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([1, 2], [1])

    def test_rows_sum_to_supports(self):
        y_true = [0, 0, 1, 1, 2]
        y_pred = [0, 1, 1, 2, 2]
        matrix, labels = confusion_matrix(y_true, y_pred)
        assert matrix.sum() == 5
        assert matrix[0].sum() == 2


class TestAccuracies:
    def test_accuracy(self):
        assert accuracy_score([1, 1, 0], [1, 0, 0]) == pytest.approx(2 / 3)

    def test_balanced_accuracy_weights_classes(self):
        # 9/10 correct on majority, 0/1 on minority -> plain acc 0.9
        # but balanced 0.45.
        y_true = [0] * 10 + [1]
        y_pred = [0] * 9 + [1] + [0]
        assert accuracy_score(y_true, y_pred) == pytest.approx(9 / 11 + 0, abs=0.1)
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.45)

    def test_balanced_ignores_absent_classes(self):
        assert balanced_accuracy_score([0, 0], [0, 1]) == pytest.approx(0.5)

    def test_empty(self):
        assert accuracy_score([], []) == 0.0
        assert balanced_accuracy_score([], []) == 0.0


class TestPrecisionRecallF1:
    def test_perfect(self):
        p, r, f = precision_recall_f1([1, 0], [1, 0], positive=1)
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_known_values(self):
        # tp=2 fp=1 fn=1
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        p, r, f = precision_recall_f1(y_true, y_pred, positive=1)
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)
        assert f == pytest.approx(2 / 3)

    def test_zero_denominators(self):
        p, r, f = precision_recall_f1([0, 0], [0, 0], positive=1)
        assert (p, r, f) == (0.0, 0.0, 0.0)

    def test_f1_harmonic(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 0, 0]  # p=1, r=0.5
        assert f1_score(y_true, y_pred, positive=1) == pytest.approx(2 / 3)


class TestReport:
    def test_report_structure(self):
        report = classification_report(["a", "b", "b"], ["a", "b", "a"])
        assert set(report) == {"a", "b", "macro avg"}
        assert report["a"]["support"] == 1.0
        assert 0.0 <= report["macro avg"]["f1"] <= 1.0

    def test_macro_average_correct(self):
        report = classification_report([0, 1], [0, 1])
        assert report["macro avg"]["precision"] == 1.0
