"""FIAT configuration (defaults follow the paper's deployed settings)."""

from __future__ import annotations

from dataclasses import dataclass

from ..net.flows import FlowDefinition

__all__ = ["FiatConfig"]


@dataclass
class FiatConfig:
    """Tunable parameters of a FIAT deployment.

    Defaults mirror the paper: a 20-minute bootstrap (2x the largest
    predictable-flow interval of Fig 1c), the PortLess flow definition
    (superior in Fig 1b), the 5-second event gap (§3.2), features over
    the first 5 packets (§4.1), and a brute-force lockout after repeated
    unauthorized manual events in a short window (§5.4).
    """

    #: Seconds of all-allow learning before enforcement starts.
    bootstrap_s: float = 1200.0
    #: Flow definition used for rules (PortLess deployed by the paper).
    flow_definition: FlowDefinition = FlowDefinition.PORTLESS
    #: IAT quantisation resolution of the bucket heuristic, seconds.
    iat_resolution: float = 0.25
    #: Gap closing an unpredictable event, seconds.
    event_gap_s: float = 5.0
    #: Packets of an unpredictable event allowed through / featurised.
    first_n_packets: int = 5
    #: How long a verified humanness proof authorizes manual traffic, s.
    human_validity_s: float = 60.0
    #: Unauthorized manual events within ``lockout_window_s`` before the
    #: device is disconnected pending manual re-authorization.
    lockout_threshold: int = 3
    lockout_window_s: float = 300.0
    #: Freshness window of the authentication channel, seconds.
    channel_freshness_s: float = 30.0
    #: Drift adaptation (§7): refresh the rule table from the live
    #: predictor every this many seconds (``None`` = freeze at bootstrap,
    #: the paper's prototype behaviour).
    rule_refresh_s: "float | None" = None
    #: Drift adaptation: expire rules unused for this long (``None`` =
    #: never expire).
    rule_ttl_s: "float | None" = None
