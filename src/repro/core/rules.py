"""Access-control rule table learned during bootstrap (paper §5.4).

During the 20-minute bootstrap FIAT allows all traffic and feeds it to a
:class:`~repro.predictability.buckets.BucketPredictor`.  Afterwards the
recurring buckets — flows that exhibited at least one repeated
inter-arrival time — are frozen into *allow rules* under the PortLess
definition.  At enforcement time a packet "hits" when its bucket is a
rule and its IAT since the bucket's previous packet matches a learned
bin (± one neighbour bin); rule hits are allowed immediately, misses
enter the unpredictable-event path.

Rules are per device and per location and are deliberately not
transferred between deployments (the heuristic depends on IPs/domains,
which are geolocation-sensitive — §4.3).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set, Tuple

from ..net.dns import DnsTable
from ..net.flows import FlowDefinition, decode_flow_key, encode_flow_key, flow_key
from ..net.packet import Packet
from ..predictability.buckets import BucketPredictor, quantize_iat

__all__ = ["RuleTable"]

#: Version of the serialised state schema (see :meth:`RuleTable.to_state`).
_STATE_VERSION = 1


class RuleTable:
    """Frozen allow rules: bucket -> accepted IAT bins."""

    def __init__(
        self,
        definition: FlowDefinition,
        dns: Optional[DnsTable],
        resolution: float,
        neighbor_bins: int = 1,
    ) -> None:
        self.definition = definition
        self.dns = dns
        self.resolution = resolution
        self.neighbor_bins = neighbor_bins
        self._rules: Dict[Tuple[Hashable, ...], Set[int]] = {}
        self._last_seen: Dict[Tuple[Hashable, ...], float] = {}
        self._last_hit: Dict[Tuple[Hashable, ...], float] = {}
        self.n_hits = 0
        self.n_misses = 0
        #: bumped whenever the rule *set* changes; the streaming engine
        #: keys its vectorized match cache on (table identity, counter).
        self._mutations = 0

    @classmethod
    def from_predictor(cls, predictor: BucketPredictor) -> "RuleTable":
        """Freeze a bootstrap predictor's recurring buckets into rules."""
        table = cls(
            definition=predictor.definition,
            dns=predictor.dns,
            resolution=predictor.resolution,
            neighbor_bins=predictor.neighbor_bins,
        )
        for key, bins in predictor.recurring_buckets():
            table._rules[key] = set(bins)
        return table

    def __len__(self) -> int:
        return len(self._rules)

    def add_rule(self, key: Tuple[Hashable, ...], bins: Set[int]) -> None:
        """Manually install a rule (used by the §7 DAG extension)."""
        self._rules.setdefault(key, set()).update(bins)
        self._mutations += 1

    def matches(self, packet: Packet) -> bool:
        """Whether the packet hits an allow rule.

        Also maintains per-bucket last-seen timestamps so the IAT check
        works online.  A rule's first packet after bootstrap matches on
        bucket membership alone (there is no IAT to test yet).
        """
        key = flow_key(packet, self.definition, self.dns)
        bins = self._rules.get(key)
        last = self._last_seen.get(key)
        self._last_seen[key] = packet.timestamp
        if bins is None:
            self.n_misses += 1
            return False
        if last is None:
            self.n_hits += 1
            self._last_hit[key] = packet.timestamp
            return True
        iat_bin = quantize_iat(packet.timestamp - last, self.resolution)
        for delta in range(-self.neighbor_bins, self.neighbor_bins + 1):
            if iat_bin + delta in bins:
                self.n_hits += 1
                self._last_hit[key] = packet.timestamp
                return True
        self.n_misses += 1
        return False

    # -- drift adaptation (§7: temporal variation in device behaviour) ----------

    def expire_stale(self, now: float, ttl_s: float) -> int:
        """Drop rules whose flow has not hit for ``ttl_s`` seconds.

        Devices change behaviour over time (firmware updates, seasonal
        routines); an allow rule for a flow the device no longer sends
        is pure attack surface.  Returns the number of rules removed.
        Rules that never matched are aged from their installation
        (first ``matches`` call seeds ``_last_hit`` only on a hit, so an
        unseen rule's age is measured from the oldest recorded hit or
        treated as stale immediately once a sighting exists).
        """
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        stale = [
            key
            for key in self._rules
            if now - self._last_hit.get(key, self._last_seen.get(key, now)) > ttl_s
        ]
        for key in stale:
            del self._rules[key]
            self._last_hit.pop(key, None)
        if stale:
            self._mutations += 1
        return len(stale)

    def merge_from_predictor(
        self,
        predictor: BucketPredictor,
        now: float,
        max_idle_s: Optional[float] = None,
    ) -> int:
        """Adopt newly recurring buckets from a live predictor.

        Used by the proxy's periodic refresh: flows that became periodic
        *after* bootstrap (a new firmware heartbeat, a new season's
        routine) turn into rules without a full re-bootstrap.  Buckets
        idle for longer than ``max_idle_s`` are skipped, so a rule that
        :meth:`expire_stale` retired is not resurrected from the
        predictor's long memory.  Returns the number of new rules.
        """
        added = 0
        for key, bins in predictor.recurring_buckets():
            if max_idle_s is not None:
                last = predictor.last_seen(key)
                if last is None or now - last > max_idle_s:
                    continue
            if key not in self._rules:
                self._rules[key] = set(bins)
                self._last_hit[key] = now
                added += 1
            else:
                self._rules[key].update(bins)
        self._mutations += 1
        return added

    @property
    def hit_rate(self) -> float:
        """Fraction of checked packets that hit a rule."""
        total = self.n_hits + self.n_misses
        return self.n_hits / total if total else 0.0

    # -- durable state ------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Serialise the frozen rule table (versioned, JSON-native).

        The allow rules are the product of the 20-minute bootstrap; a
        restart that lost them would silently re-enter bootstrap and
        mass-drop (or mass-allow) traffic the table already vetted.
        Rule order is preserved; bin sets are sorted for canonical bytes.
        """
        return {
            "v": _STATE_VERSION,
            "definition": self.definition.value,
            "resolution": self.resolution,
            "neighbor_bins": self.neighbor_bins,
            "rules": [[encode_flow_key(k), sorted(bins)] for k, bins in self._rules.items()],
            "last_seen": [[encode_flow_key(k), t] for k, t in self._last_seen.items()],
            "last_hit": [[encode_flow_key(k), t] for k, t in self._last_hit.items()],
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
        }

    @classmethod
    def from_state(
        cls, state: Dict[str, object], dns: Optional[DnsTable] = None
    ) -> "RuleTable":
        """Rebuild a rule table from :meth:`to_state` output."""
        if state.get("v") != _STATE_VERSION:
            raise ValueError(f"unsupported RuleTable state version: {state.get('v')!r}")
        table = cls(
            definition=FlowDefinition(state["definition"]),
            dns=dns,
            resolution=float(state["resolution"]),
            neighbor_bins=int(state["neighbor_bins"]),
        )
        for encoded_key, bins in state["rules"]:  # type: ignore[union-attr]
            table._rules[decode_flow_key(encoded_key)] = {int(b) for b in bins}
        for encoded_key, t in state["last_seen"]:  # type: ignore[union-attr]
            table._last_seen[decode_flow_key(encoded_key)] = float(t)
        for encoded_key, t in state["last_hit"]:  # type: ignore[union-attr]
            table._last_hit[decode_flow_key(encoded_key)] = float(t)
        table.n_hits = int(state["n_hits"])
        table.n_misses = int(state["n_misses"])
        return table
