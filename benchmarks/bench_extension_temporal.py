"""Extension bench (§7 future work): temporal model vs deployed BernoulliNB.

The paper plans to try temporally-relevant models (LSTM-style) for the
manual-event classifier.  This bench trains the reproduction's RNN
sequence classifier on per-packet feature sequences and compares it with
the deployed BernoulliNB on the same events.
"""

import numpy as np

from repro import ml
from repro.features import event_labels, event_sequences, events_to_matrix

from benchmarks._helpers import print_table


def test_extension_temporal_model(benchmark, labeled_event_sets):
    rows = []
    rnn_scores, bnb_scores = [], []
    for device in ("EchoDot4", "WyzeCam", "E4"):
        events = labeled_event_sets[(device, "US")]
        labels = event_labels(events)
        sequences = event_sequences(events)
        X_flat = ml.StandardScaler().fit_transform(events_to_matrix(events))

        train = np.arange(0, len(events), 2)
        test = np.arange(1, len(events), 2)

        def train_rnn(train=train, test=test, sequences=sequences, labels=labels):
            model = ml.SimpleRNNClassifier(hidden_size=24, n_epochs=200, seed=0)
            model.fit([sequences[i] for i in train], labels[train])
            return ml.balanced_accuracy_score(
                labels[test], model.predict([sequences[i] for i in test])
            )

        if device == "EchoDot4":
            rnn = benchmark.pedantic(train_rnn, rounds=1, iterations=1)
        else:
            rnn = train_rnn()
        bnb_model = ml.BernoulliNB().fit(X_flat[train], labels[train])
        bnb = ml.balanced_accuracy_score(labels[test], bnb_model.predict(X_flat[test]))
        rnn_scores.append(rnn)
        bnb_scores.append(bnb)
        rows.append((device, f"{rnn:.3f}", f"{bnb:.3f}"))

    print_table(
        "Extension — temporal RNN vs deployed BernoulliNB "
        "(paper §7: planned LSTM exploration)",
        ("device", "RNN balanced acc", "BernoulliNB balanced acc"),
        rows,
    )

    # The temporal model is competitive (within 15 points) — the §7
    # hypothesis that sequence structure carries usable signal.
    assert np.mean(rnn_scores) > np.mean(bnb_scores) - 0.15
    assert min(rnn_scores) > 0.6
