"""One-page miniature of the full reproduction (every experiment, small).

Runs a scaled-down version of each paper experiment in sequence and
prints a compact summary — useful as a smoke test of the whole pipeline
and as a map of the codebase.  The full-size versions live in
``benchmarks/`` (``pytest benchmarks/ --benchmark-only -s``).

Run:  python examples/full_reproduction.py    (~2-3 minutes)
"""

import numpy as np

from repro import ml
from repro.core import FiatConfig, FiatSystem, race_statistics
from repro.core.latency import LAN_SCENARIO, TABLE7_OPERATIONS
from repro.datasets import generate_yourthings
from repro.features import event_labels, events_to_matrix
from repro.net import FlowDefinition, TrafficClass
from repro.predictability import analyze_trace, max_predictable_intervals
from repro.testbed import Household, HouseholdConfig, generate_labeled_events


def section(title):
    print(f"\n--- {title} " + "-" * max(0, 58 - len(title)))


def main() -> None:
    section("Fig 1b/1c: public-corpus predictability (20-device mini)")
    corpus = generate_yourthings(n_devices=20, duration_s=1800.0, seed=0)
    for definition in (FlowDefinition.PORTLESS, FlowDefinition.CLASSIC):
        fractions = np.asarray(analyze_trace(corpus, definition).fractions())
        print(f"  {definition.value:8s} devices >80% predictable: "
              f"{100 * np.mean(fractions > 0.8):.0f}%  (paper: ~80% PortLess)")
    intervals = [v for v in max_predictable_intervals(corpus).values() if v > 0]
    print(f"  max predictable interval: {max(intervals):.0f}s (paper: <=600s)")

    section("Fig 2: testbed predictability by class (4 devices, 1h)")
    result = Household(
        ["EchoDot4", "SP10", "WyzeCam", "Nest-E"], HouseholdConfig(duration_s=3600.0, seed=1)
    ).simulate()
    report = analyze_trace(result.trace, FlowDefinition.PORTLESS)
    for device in sorted(report.devices):
        entry = report.devices[device]
        parts = []
        for cls in (TrafficClass.CONTROL, TrafficClass.AUTOMATED, TrafficClass.MANUAL):
            value = entry.class_fraction(cls)
            parts.append(f"{cls.value[:4]}={value:.2f}" if value is not None else f"{cls.value[:4]}=-")
        print(f"  {device:10s} {' '.join(parts)}")

    section("Tables 2/3: manual-event classification (EchoDot4)")
    events = generate_labeled_events("EchoDot4", n_manual=40, n_automated=80,
                                     n_control=100, seed=3)
    X = ml.StandardScaler().fit_transform(events_to_matrix(events))
    y = event_labels(events)
    for name, model in (
        ("NearestCentroid", ml.NearestCentroidClassifier("euclidean")),
        ("BernoulliNB", ml.BernoulliNB()),
        ("kNN (k=5)", ml.KNeighborsClassifier(5)),
    ):
        score = ml.cross_validate(model, X, y, n_splits=5)["mean"]
        print(f"  {name:16s} balanced accuracy {score:.3f}")

    section("Table 6: FIAT end-to-end accuracy (3 devices)")
    system = FiatSystem(["EchoDot4", "SP10", "WyzeCam"],
                        config=FiatConfig(bootstrap_s=0.0), seed=0,
                        n_training_events=200)
    accuracy = system.run_accuracy(n_manual=25, n_non_manual=50, n_attacks=25)
    for device, row in accuracy.items():
        print(f"  {device:10s} manual R {row.manual_recall:.2f}  "
              f"legit blocked {100 * (row.fp_manual_blocked + row.fp_non_manual_blocked):.1f}%  "
              f"FN {100 * row.false_negative:.1f}%")
    human = system.human_validation_rates()
    print(f"  humanness recall: {human['human_recall']:.2f} human / "
          f"{human['non_human_recall']:.2f} non-human (paper 0.934/0.982)")

    section("Table 7: the latency race (LAN)")
    for operation in TABLE7_OPERATIONS[:2]:
        stats = race_statistics(operation, LAN_SCENARIO, n=40, seed=0)
        print(f"  {operation.device:10s} command {stats['mean_command_ms']:5.0f}ms  "
              f"proof {stats['mean_proof_ms']:4.0f}ms  "
              f"FIAT wins {100 * stats['proof_win_rate']:.0f}%  added hold "
              f"{stats['mean_hold_ms']:.1f}ms")

    print("\nAll experiments reproduced in miniature. Full versions:")
    print("  pytest benchmarks/ --benchmark-only -s")


if __name__ == "__main__":
    main()
