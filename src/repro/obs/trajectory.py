"""Committed performance trajectory: record, gate, and render bench history.

Every bench already emits a machine-readable ``BENCH_*.json`` headline
(``FIAT_BENCH_OUT``), but until now nothing retained them — ROADMAP
calls out that "no ``BENCH_*.json`` is committed yet, so there is no
tracked perf trajectory".  This module closes the loop:

* :func:`record_run` scans a bench output directory and appends one
  JSONL entry (run id, UTC stamp, host hints, every bench headline) to
  a *committed* history file, ``benchmarks/baselines/history.jsonl`` by
  default — the trajectory artifact CI and reviewers diff;
* :func:`check_regression` compares the newest entry against the
  median of the preceding entries for every *tracked* metric and fails
  on drift beyond the metric's tolerance — the CI regression gate;
* :func:`render_trend` renders the ``fiat-repro bench-report`` view:
  one sparkline row per tracked metric with the current value, the
  baseline, and the delta.

History entries are append-only and deliberately small (headlines
only, never full metric snapshots), so the committed file stays
reviewable.  Tolerances are wide by design: shared CI runners jitter
by tens of percent, and the gate exists to catch *regressions you
would care about* (a 2x slowdown from an accidental O(n²) fold), not
to flap on scheduler noise.
"""

from __future__ import annotations

import datetime as _datetime
import json
import math
import os
import platform
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "TRACKED_METRICS",
    "MetricSpec",
    "Regression",
    "TrajectoryCheck",
    "collect_bench_headlines",
    "flatten_headline",
    "record_run",
    "load_history",
    "check_regression",
    "render_trend",
]

#: The committed trajectory artifact, relative to the repository root.
DEFAULT_HISTORY_PATH = os.path.join("benchmarks", "baselines", "history.jsonl")

#: Entries of the recent window a baseline is derived from (median).
BASELINE_WINDOW = 5

#: Sparkline glyphs, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class MetricSpec:
    """How one tracked headline metric is gated.

    ``direction`` is the *good* direction: ``"higher"`` (throughput) or
    ``"lower"`` (overhead, memory).  ``tolerance`` is the allowed
    fractional drift in the bad direction relative to the baseline;
    ``floor`` widens the gate for metrics whose baseline sits near
    zero (a 0.01 → 0.03 overhead jump is 3x relative but harmless).
    """

    direction: str
    tolerance: float
    floor: float = 0.0

    def limit(self, baseline: float) -> float:
        """The gate value: beyond this, the metric is a regression."""
        slack = max(abs(baseline) * self.tolerance, self.floor)
        if self.direction == "higher":
            return baseline - slack
        return baseline + slack

    def regressed(self, current: float, baseline: float) -> bool:
        """Whether ``current`` falls outside the gate."""
        if self.direction == "higher":
            return current < self.limit(baseline)
        return current > self.limit(baseline)


#: The gated metrics: ``{bench: {flattened headline path: spec}}``.
#: "packets/sec" and "homes/sec" — the two ROADMAP trajectory axes —
#: plus the overhead/memory invariants earlier PRs promised.
TRACKED_METRICS: Dict[str, Dict[str, MetricSpec]] = {
    "proxy_throughput": {
        "plain_packets_per_s": MetricSpec("higher", 0.40),
        "instrumented_packets_per_s": MetricSpec("higher", 0.40),
        "overhead_fraction": MetricSpec("lower", 0.50, floor=0.08),
    },
    "fleet_scaling": {
        "homes_per_sec.1": MetricSpec("higher", 0.40),
    },
    "fleet_checkpoint": {
        "homes_per_sec_plain": MetricSpec("higher", 0.40),
        "checkpoint_overhead_pct": MetricSpec("lower", 0.50, floor=25.0),
    },
    "fleet_bounded_memory": {
        "peak_mb.10000": MetricSpec("lower", 0.50),
        "peak_growth_x": MetricSpec("lower", 0.25, floor=0.3),
    },
    "fleet_distrib": {
        "homes_per_sec": MetricSpec("higher", 0.40),
        # Recovery cost is dominated by lease-timeout waits and machine
        # restarts on a tiny fleet; the floor keeps CI jitter out.
        "recovery_overhead_pct": MetricSpec("lower", 0.50, floor=50.0),
    },
    "streaming": {
        "streaming_packets_per_s": MetricSpec("higher", 0.40),
        # Timing noise sits in both numerator and denominator; the hard
        # ">= 2x" promise is asserted inside the bench itself.
        "speedup_x": MetricSpec("higher", 0.30),
    },
}


@dataclass
class Regression:
    """One tracked metric outside its gate."""

    bench: str
    metric: str
    current: float
    baseline: float
    limit: float
    direction: str

    def describe(self) -> str:
        """One human-readable gate-failure line."""
        drift = (
            (self.current - self.baseline) / self.baseline * 100.0
            if self.baseline
            else float("inf")
        )
        return (
            f"{self.bench}:{self.metric} = {self.current:g} "
            f"(baseline {self.baseline:g}, {drift:+.0f}%, "
            f"gate {'>=' if self.direction == 'higher' else '<='} {self.limit:g})"
        )


@dataclass
class TrajectoryCheck:
    """Outcome of one regression-gate evaluation."""

    regressions: List[Regression] = field(default_factory=list)
    #: tracked metrics evaluated (present in both current and baseline)
    n_checked: int = 0
    #: tracked metrics with no prior history to gate against
    n_ungated: int = 0

    @property
    def ok(self) -> bool:
        """Whether every gated metric stayed inside its tolerance."""
        return not self.regressions

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"bench gate: {self.n_checked} metrics checked, "
            f"{self.n_ungated} without history, "
            f"{len(self.regressions)} regression(s)"
        ]
        lines.extend(f"  REGRESSION {r.describe()}" for r in self.regressions)
        return "\n".join(lines)


def flatten_headline(headline: Dict[str, object], prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of one headline dict as ``a.b.c`` paths."""
    flat: Dict[str, float] = {}
    for key, value in headline.items():
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            value = float(value)
            if math.isfinite(value):
                flat[path] = value
        elif isinstance(value, dict):
            flat.update(flatten_headline(value, prefix=f"{path}."))
    return flat


def collect_bench_headlines(bench_dir: str) -> Dict[str, Dict[str, object]]:
    """Read every ``BENCH_*.json`` in a directory → ``{bench: headline}``."""
    headlines: Dict[str, Dict[str, object]] = {}
    for name in sorted(os.listdir(bench_dir)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        with open(os.path.join(bench_dir, name), "r", encoding="utf-8") as handle:
            document = json.load(handle)
        bench = str(document.get("bench", name[len("BENCH_") : -len(".json")]))
        headline = document.get("headline")
        if isinstance(headline, dict):
            headlines[bench] = headline
    return headlines


def record_run(
    bench_dir: str,
    history_path: str = DEFAULT_HISTORY_PATH,
    run_id: Optional[str] = None,
    note: str = "",
) -> Dict[str, object]:
    """Append one trajectory entry from a bench output directory.

    Returns the appended entry.  Raises ``ValueError`` when the
    directory holds no bench results — recording an empty run would
    silently poison every later baseline median.
    """
    headlines = collect_bench_headlines(bench_dir)
    if not headlines:
        raise ValueError(f"no BENCH_*.json results under {bench_dir!r}")
    entry: Dict[str, object] = {
        "run": run_id or "local",
        "recorded_at": _datetime.datetime.now(_datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
            "cpus": os.cpu_count() or 0,
        },
        "benches": headlines,
    }
    if note:
        entry["note"] = note
    os.makedirs(os.path.dirname(history_path) or ".", exist_ok=True)
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(history_path: str = DEFAULT_HISTORY_PATH) -> List[Dict[str, object]]:
    """Every well-formed entry of the history file, oldest first.

    Malformed lines are skipped (a botched merge must not brick the
    gate), missing files read as empty history.
    """
    entries: List[Dict[str, object]] = []
    if not os.path.exists(history_path):
        return entries
    with open(history_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict) and isinstance(entry.get("benches"), dict):
                entries.append(entry)
    return entries


def _metric_series(
    entries: Iterable[Dict[str, object]], bench: str, metric: str
) -> List[float]:
    """The value of one tracked metric across history entries, in order."""
    series: List[float] = []
    for entry in entries:
        headline = entry.get("benches", {}).get(bench)
        if not isinstance(headline, dict):
            continue
        value = flatten_headline(headline).get(metric)
        if value is not None:
            series.append(value)
    return series


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def check_regression(
    entries: List[Dict[str, object]],
    tracked: Optional[Dict[str, Dict[str, MetricSpec]]] = None,
) -> TrajectoryCheck:
    """Gate the newest entry against the preceding history.

    The baseline per metric is the median of up to
    :data:`BASELINE_WINDOW` *prior* entries carrying it — robust to a
    single historic outlier in either direction.  Metrics with no
    prior history pass (counted in ``n_ungated``): the first committed
    run *establishes* the trajectory, it cannot regress from nothing.
    """
    tracked = TRACKED_METRICS if tracked is None else tracked
    check = TrajectoryCheck()
    if not entries:
        return check
    current_entry, prior = entries[-1], entries[:-1]
    for bench, metrics in sorted(tracked.items()):
        headline = current_entry.get("benches", {}).get(bench)
        if not isinstance(headline, dict):
            continue
        flat = flatten_headline(headline)
        for metric, spec in sorted(metrics.items()):
            current = flat.get(metric)
            if current is None:
                continue
            series = _metric_series(prior, bench, metric)
            if not series:
                check.n_ungated += 1
                continue
            baseline = _median(series[-BASELINE_WINDOW:])
            check.n_checked += 1
            if spec.regressed(current, baseline):
                check.regressions.append(
                    Regression(
                        bench=bench,
                        metric=metric,
                        current=current,
                        baseline=baseline,
                        limit=spec.limit(baseline),
                        direction=spec.direction,
                    )
                )
    return check


def _sparkline(values: List[float]) -> str:
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[int((v - lo) / (hi - lo) * (len(_SPARK) - 1))] for v in values
    )


def render_trend(
    entries: List[Dict[str, object]],
    last: int = 12,
    tracked: Optional[Dict[str, Dict[str, MetricSpec]]] = None,
) -> str:
    """The ``fiat-repro bench-report`` trend view over the history."""
    tracked = TRACKED_METRICS if tracked is None else tracked
    lines = [f"=== FIAT perf trajectory ({len(entries)} recorded runs) ==="]
    if not entries:
        lines.append(
            "  (no history — run the benches with FIAT_BENCH_OUT set and "
            "record them via tools/bench_track.py)"
        )
        return "\n".join(lines) + "\n"
    newest = entries[-1]
    lines.append(
        f"  newest: run {newest.get('run')!r} at {newest.get('recorded_at')}"
    )
    header = f"  {'metric':44s} {'trend':>{last}s} {'current':>12s} {'baseline':>12s} {'delta':>8s}"
    lines.append(header)
    for bench, metrics in sorted(tracked.items()):
        for metric, spec in sorted(metrics.items()):
            series = _metric_series(entries, bench, metric)
            if not series:
                continue
            window = series[-last:]
            current = series[-1]
            prior = series[:-1]
            if prior:
                baseline = _median(prior[-BASELINE_WINDOW:])
                delta = (
                    f"{(current - baseline) / baseline * 100.0:+.0f}%"
                    if baseline
                    else "n/a"
                )
                base_text = f"{baseline:12g}"
                flag = " <-- REGRESSION" if spec.regressed(current, baseline) else ""
            else:
                delta, base_text, flag = "new", f"{'—':>12s}", ""
            lines.append(
                f"  {bench + ':' + metric:44s} "
                f"{_sparkline(window):>{last}s} {current:12g} {base_text} "
                f"{delta:>8s}{flag}"
            )
    return "\n".join(lines) + "\n"
