"""Unit tests for the IoT-Inspector 5-second aggregation analysis."""

import pytest

from repro.net import Trace
from repro.predictability import aggregate_trace, windowed_predictability
from tests.conftest import make_packet


class TestAggregation:
    def test_windows_collapse_packets(self):
        packets = [make_packet(timestamp=t) for t in (0.0, 1.0, 2.0, 6.0)]
        records = aggregate_trace(Trace(packets), window=5.0)
        assert len(records) == 2
        assert records[0].n_packets == 3
        assert records[0].total_bytes == 300
        assert records[1].n_packets == 1

    def test_flows_separate_windows(self):
        packets = [make_packet(timestamp=0.0, size=100), make_packet(timestamp=0.0, size=100, dst_ip="9.9.9.9")]
        records = aggregate_trace(Trace(packets), window=5.0)
        assert len(records) == 2

    def test_empty_trace(self):
        assert aggregate_trace(Trace([])) == []
        assert windowed_predictability(Trace([])) == 0.0


class TestWindowedPredictability:
    def test_periodic_flow_predictable_windows(self):
        # One packet per 10 s -> identical byte-sums in alternating
        # windows at a constant window gap: predictable.
        packets = [make_packet(timestamp=float(t)) for t in range(0, 200, 10)]
        assert windowed_predictability(Trace(packets), window=5.0) > 0.8

    def test_noise_poisons_windows(self, rng):
        # A periodic flow plus one random-size packet in each window:
        # the per-window byte-sum keeps changing, killing predictability
        # (the coarsening effect the paper describes).
        packets = [make_packet(timestamp=float(t)) for t in range(0, 100, 10)]
        packets += [
            make_packet(timestamp=float(t) + 1.0, size=int(rng.integers(1, 1400)))
            for t in range(0, 100, 10)
        ]
        packet_level = windowed_predictability(Trace(packets), window=5.0)
        assert packet_level < 0.5

    def test_pure_periodicity_beats_noisy(self, rng):
        clean = [make_packet(timestamp=float(t)) for t in range(0, 200, 10)]
        noisy = clean + [
            make_packet(timestamp=float(t) + 0.5, size=int(rng.integers(1, 1400)))
            for t in range(0, 200, 20)
        ]
        assert windowed_predictability(Trace(clean)) > windowed_predictability(Trace(noisy))
