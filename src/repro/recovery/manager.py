"""Supervised crash recovery for the FIAT proxy stack.

:class:`RecoveryManager` makes the proxy's security state durable:

* every externally visible input (packet, authentication wire, manual
  unlock) is appended to a CRC-framed write-ahead journal *before* it is
  applied;
* every ``snapshot_interval_s`` of simulated time the full state
  (``FiatProxy.snapshot()`` + ``HumanValidationService.to_state()``) is
  written as an atomic snapshot and the journal is compacted — older
  epochs are deleted once the new snapshot is durable;
* after a crash, :meth:`recover` builds a fresh proxy stack (via the
  injected factory — code, trained models and TEE keys survive a process
  death on their own), loads the newest valid snapshot, replays the
  journal's valid prefix through it, truncates any torn tail, and
  reconciles events left open by the crash fail-closed.

Replay is deterministic: the journal holds raw inputs with their
simulated arrival times, and every consumer of randomness in the stack
is seeded, so the same snapshot + journal always reconstructs a
byte-identical decision log — the invariant the chaos harness sweeps.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..net.packet import Packet
from ..obs import NULL_OBS, Observability
from .journal import JournalWriter, read_journal
from .snapshot import read_snapshot, write_snapshot

__all__ = ["RecoveryManager", "RecoveryReport"]

logger = logging.getLogger(__name__)

#: Version of the combined stack-state schema written into snapshots.
STACK_STATE_VERSION = 1


def _journal_path(state_dir: str, epoch: int) -> str:
    return os.path.join(state_dir, f"journal-{epoch:06d}.jsonl")


def _snapshot_path(state_dir: str, epoch: int) -> str:
    return os.path.join(state_dir, f"snapshot-{epoch:06d}.json")


def _list_epochs(state_dir: str, prefix: str) -> Tuple[int, ...]:
    epochs = []
    if not os.path.isdir(state_dir):
        return ()
    for name in os.listdir(state_dir):
        if name.startswith(prefix) and (name.endswith(".json") or name.endswith(".jsonl")):
            stem = name[len(prefix) :].split(".", 1)[0]
            try:
                epochs.append(int(stem))
            except ValueError:
                continue
    return tuple(sorted(epochs))


@dataclass
class RecoveryReport:
    """What one :meth:`RecoveryManager.recover` call did."""

    #: epoch whose snapshot seeded the recovered state (0 = cold start)
    snapshot_epoch: int
    #: journal records replayed on top of the snapshot
    n_replayed: int
    #: whether any journal segment ended in a torn/corrupt tail
    torn_tail: bool
    #: simulated time of the last applied record (the recovery horizon —
    #: inputs after this instant were lost with the crash)
    horizon_t: Optional[float]
    #: open events closed fail-closed by reconciliation
    n_reconciled: int
    #: bytes of journal discarded as torn tail
    torn_bytes_discarded: int = 0


class RecoveryManager:
    """Journaled state, periodic snapshots and supervised restart.

    Parameters
    ----------
    state_dir:
        Directory holding ``snapshot-NNNNNN.json`` / ``journal-NNNNNN.jsonl``
        epoch pairs (created if missing).
    factory:
        Zero-argument callable returning a fresh ``(proxy, validation)``
        pair wired exactly like the one being journaled — the restart
        path of the supervisor.  Must be deterministic.
    """

    def __init__(
        self,
        state_dir: str,
        factory: Callable[[], Tuple[object, object]],
        snapshot_interval_s: float = 300.0,
        fsync: bool = False,
        reconcile: str = "fail-closed",
        obs: Optional[Observability] = None,
    ) -> None:
        if snapshot_interval_s <= 0:
            raise ValueError("snapshot_interval_s must be positive")
        if reconcile not in ("fail-closed", "resume"):
            raise ValueError(f"reconcile must be 'fail-closed' or 'resume', got {reconcile!r}")
        self.state_dir = state_dir
        self.factory = factory
        self.snapshot_interval_s = snapshot_interval_s
        self.fsync = fsync
        self.reconcile = reconcile
        self.obs = obs if obs is not None else NULL_OBS
        os.makedirs(state_dir, exist_ok=True)
        self._proxy: Optional[object] = None
        self._validation: Optional[object] = None
        self._epoch = 0
        self._writer: Optional[JournalWriter] = None
        self._last_snapshot_t: Optional[float] = None
        self.n_restarts = 0

    # -- attachment / lifecycle ---------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current snapshot/journal epoch (0 until :meth:`start`)."""
        return self._epoch

    @property
    def journal_size_bytes(self) -> int:
        """Size of the active journal segment (0 when not journaling)."""
        return self._writer.size_bytes if self._writer is not None else 0

    def _sync_epoch_to_disk(self) -> None:
        """Raise the epoch counter to the newest on-disk epoch.

        A freshly constructed manager (a real process restart) starts at
        0 regardless of what ``state_dir`` holds.  Rotating from a
        counter *below* the on-disk epochs would leave the stale
        pre-crash snapshot/journal alive — compaction only deletes
        epochs ``<=`` the counter — and a later recovery would restore
        them, silently discarding everything journaled since (including
        the replay cache).  Worse, once the counter caught up the writer
        would append into the old journal file, mixing segments.
        """
        self._epoch = max(
            (
                self._epoch,
                *_list_epochs(self.state_dir, "snapshot-"),
                *_list_epochs(self.state_dir, "journal-"),
            )
        )

    def start(self, proxy: object, validation: object, now: float = 0.0) -> None:
        """Begin journaling a fresh stack: cut the initial snapshot epoch.

        ``state_dir`` must not already hold recovery state — refusing to
        silently overwrite an existing journal is what makes an
        accidental double-start recoverable.
        """
        if _list_epochs(self.state_dir, "snapshot-") or _list_epochs(self.state_dir, "journal-"):
            raise ValueError(
                f"state dir {self.state_dir!r} already holds recovery state; "
                "recover() from it or point at an empty directory"
            )
        self._sync_epoch_to_disk()
        self._proxy = proxy
        self._validation = validation
        self._rotate_epoch(now)

    def close(self) -> None:
        """Flush and close the active journal segment (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def simulate_crash(self, corrupt_tail_bytes: int = 0) -> None:
        """Model a process death (chaos harness hook).

        Drops the in-memory attachment without a final snapshot; with
        ``corrupt_tail_bytes > 0`` the last bytes of the active journal
        are flipped, modelling an un-synced page lost by the power cut.
        Bytes already fsync'd to stable storage (see
        :meth:`JournalWriter.append`'s ``sync`` flag) are immune — a
        power cut cannot un-write what the disk acknowledged.
        """
        path = _journal_path(self.state_dir, self._epoch)
        synced = self._writer.synced_bytes if self._writer is not None else 0
        self.close()
        self._proxy = None
        self._validation = None
        if corrupt_tail_bytes > 0 and os.path.exists(path):
            size = os.path.getsize(path)
            n = min(corrupt_tail_bytes, max(0, size - synced))
            if n > 0:
                with open(path, "rb+") as handle:
                    handle.seek(size - n)
                    tail = handle.read(n)
                    handle.seek(size - n)
                    handle.write(bytes(b ^ 0xFF for b in tail))

    # -- write-ahead journaling ---------------------------------------------------

    def _append(self, record: Dict[str, object], sync: bool = False) -> None:
        if self._writer is None:
            raise ValueError("RecoveryManager is not journaling; call start() or recover()")
        self._writer.append(record, sync=sync)
        self.obs.inc("recovery_journal_records_total", kind=str(record.get("k", "?")))

    def journal_packet(self, packet: Packet) -> None:
        """Journal one traffic packet ahead of ``proxy.process``."""
        self._append({"k": "pkt", "p": packet.to_dict()})

    def journal_auth(self, wire: bytes, now: float) -> None:
        """Journal one authentication wire ahead of ``proxy.receive_auth``.

        Synced to stable storage before the proxy acts on the proof: a
        consumed proof whose journal record is lost to a torn tail would
        reopen the QUIC 0-RTT replay window after a restart.  Proofs are
        rare (one per human interaction), so the forced fsync stays off
        the per-packet fast path.
        """
        self._append({"k": "auth", "t": now, "w": wire.hex()}, sync=True)

    def journal_unlock(self, device: str, now: float) -> None:
        """Journal a manual device re-authorization ahead of ``proxy.unlock``."""
        self._append({"k": "unlock", "t": now, "d": device})

    @staticmethod
    def _record_time(record: Dict[str, object]) -> Optional[float]:
        if record.get("k") == "pkt":
            return float(record["p"]["timestamp"])  # type: ignore[index]
        t = record.get("t")
        return None if t is None else float(t)

    def _apply(self, proxy: object, record: Dict[str, object]) -> None:
        kind = record.get("k")
        if kind == "pkt":
            proxy.process(Packet.from_dict(record["p"]))  # type: ignore[attr-defined,arg-type]
        elif kind == "auth":
            proxy.receive_auth(  # type: ignore[attr-defined]
                bytes.fromhex(str(record["w"])), float(record["t"])  # type: ignore[arg-type]
            )
        elif kind == "unlock":
            proxy.unlock(str(record["d"]))  # type: ignore[attr-defined]
        else:
            raise ValueError(f"unknown journal record kind: {kind!r}")

    # -- snapshots + compaction ---------------------------------------------------

    def _stack_state(self, now: float) -> Dict[str, object]:
        return {
            "v": STACK_STATE_VERSION,
            "t": now,
            "proxy": self._proxy.snapshot(),  # type: ignore[attr-defined]
            "validation": self._validation.to_state(),  # type: ignore[attr-defined]
        }

    def _rotate_epoch(self, now: float) -> None:
        """Write snapshot-(e+1), open journal-(e+1), delete epoch e."""
        previous = self._epoch
        self._epoch += 1
        n_bytes = write_snapshot(_snapshot_path(self.state_dir, self._epoch), self._stack_state(now))
        self.close()
        self._writer = JournalWriter(_journal_path(self.state_dir, self._epoch), fsync=self.fsync)
        self._last_snapshot_t = now
        # Compaction: the new snapshot subsumes every older epoch.
        for epoch in _list_epochs(self.state_dir, "snapshot-"):
            if epoch <= previous:
                os.unlink(_snapshot_path(self.state_dir, epoch))
        for epoch in _list_epochs(self.state_dir, "journal-"):
            if epoch <= previous:
                os.unlink(_journal_path(self.state_dir, epoch))
        self.obs.inc("recovery_snapshots_total")
        self.obs.gauge("recovery_snapshot_bytes", float(n_bytes))
        self.obs.gauge("recovery_journal_bytes", 0.0)
        self.obs.emit("recovery.snapshot", t=now, epoch=self._epoch, bytes=n_bytes)

    def maybe_checkpoint(self, now: float) -> bool:
        """Cut a snapshot + compact when the interval elapsed; True if cut."""
        if self._last_snapshot_t is None or now - self._last_snapshot_t >= self.snapshot_interval_s:
            self.checkpoint(now)
            return True
        if self._writer is not None:
            self.obs.gauge("recovery_journal_bytes", float(self._writer.size_bytes))
        return False

    def checkpoint(self, now: float) -> None:
        """Unconditionally snapshot the attached stack and compact."""
        if self._proxy is None:
            raise ValueError("RecoveryManager has no attached stack; call start() or recover()")
        self._rotate_epoch(now)

    # -- recovery -----------------------------------------------------------------

    def recover(
        self, restart_t: Optional[float] = None
    ) -> Tuple[object, object, RecoveryReport]:
        """Rebuild the proxy stack from the newest valid snapshot + journal.

        Returns ``(proxy, validation, report)`` and re-attaches the
        manager to the recovered stack (journaling resumes in a fresh,
        compacted epoch — the torn tail, if any, is permanently
        discarded).  Corrupt snapshots fall back to the previous epoch;
        a journal segment's corrupt tail ends replay (fail-closed: record
        order past a bad frame cannot be trusted).
        """
        proxy, validation = self.factory()
        self._proxy = proxy
        self._validation = validation
        self._sync_epoch_to_disk()

        snapshot_epoch = 0
        state: Optional[Dict[str, object]] = None
        for epoch in reversed(_list_epochs(self.state_dir, "snapshot-")):
            state = read_snapshot(_snapshot_path(self.state_dir, epoch))
            if state is not None:
                if state.get("v") != STACK_STATE_VERSION:
                    raise ValueError(
                        f"unsupported stack state version: {state.get('v')!r}"
                    )
                snapshot_epoch = epoch
                break
        horizon_t: Optional[float] = None
        if state is not None:
            proxy.restore(state["proxy"])  # type: ignore[attr-defined,arg-type]
            validation.restore(state["validation"])  # type: ignore[attr-defined,arg-type]
            horizon_t = float(state["t"])  # type: ignore[arg-type]

        n_replayed = 0
        torn = False
        torn_bytes = 0
        for epoch in _list_epochs(self.state_dir, "journal-"):
            if epoch < snapshot_epoch:
                continue
            result = read_journal(_journal_path(self.state_dir, epoch))
            for record in result.records:
                self._apply(proxy, record)
                t = self._record_time(record)
                if t is not None:
                    horizon_t = t
                n_replayed += 1
            if result.torn:
                torn = True
                torn_bytes += os.path.getsize(
                    _journal_path(self.state_dir, epoch)
                ) - result.valid_bytes
                logger.warning(
                    "journal epoch %d has a torn tail (%s): %d byte(s) discarded",
                    epoch,
                    result.torn_reason,
                    torn_bytes,
                )
                break  # segments past a corruption cannot be trusted

        n_reconciled = 0
        if self.reconcile == "fail-closed":
            reconcile_t = restart_t if restart_t is not None else (horizon_t or 0.0)
            n_reconciled = proxy.reconcile_after_crash(reconcile_t)  # type: ignore[attr-defined]

        # Resume journaling in a fresh epoch: the recovered state becomes
        # the new snapshot and every stale/torn segment is compacted away.
        checkpoint_t = restart_t if restart_t is not None else (horizon_t or 0.0)
        self._rotate_epoch(checkpoint_t)

        self.n_restarts += 1
        self.obs.inc("recovery_restarts_total")
        self.obs.inc("recovery_replayed_records_total", float(n_replayed))
        if torn:
            self.obs.inc("recovery_torn_tails_total")
        self.obs.emit(
            "recovery.restart",
            t=checkpoint_t,
            snapshot_epoch=snapshot_epoch,
            n_replayed=n_replayed,
            torn_tail=torn,
            n_reconciled=n_reconciled,
        )
        report = RecoveryReport(
            snapshot_epoch=snapshot_epoch,
            n_replayed=n_replayed,
            torn_tail=torn,
            horizon_t=horizon_t,
            n_reconciled=n_reconciled,
            torn_bytes_discarded=torn_bytes,
        )
        return proxy, validation, report
