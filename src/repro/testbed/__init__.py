"""Testbed simulator: devices, cloud, phone, household and attackers."""

from .attacks import (
    AccountCompromiseAttack,
    AttackEvent,
    BruteForceAttack,
    ReplayAttack,
    SpywareSyncAttack,
)
from .cloud import CloudDirectory, Endpoint, Location
from .devices import (
    BOSE_SOUNDTOUCH,
    TESTBED,
    BurstSpec,
    DeviceProfile,
    EventTemplate,
    PeriodicFlow,
    StreamSpec,
    profile_for,
)
from .household import (
    Household,
    HouseholdConfig,
    SimulationResult,
    generate_labeled_events,
    render_event,
)
from .phone import APP_PACKAGES, ManualInteraction, Phone
from .routines import (
    ChainTrigger,
    DailyTrigger,
    JitteredDailyTrigger,
    PeriodicTrigger,
    Routine,
    RoutineSchedule,
)

__all__ = [
    "Location",
    "CloudDirectory",
    "Endpoint",
    "DeviceProfile",
    "PeriodicFlow",
    "EventTemplate",
    "BurstSpec",
    "StreamSpec",
    "TESTBED",
    "BOSE_SOUNDTOUCH",
    "profile_for",
    "Household",
    "HouseholdConfig",
    "SimulationResult",
    "generate_labeled_events",
    "render_event",
    "Phone",
    "ManualInteraction",
    "APP_PACKAGES",
    "Routine",
    "RoutineSchedule",
    "PeriodicTrigger",
    "DailyTrigger",
    "JitteredDailyTrigger",
    "ChainTrigger",
    "AttackEvent",
    "AccountCompromiseAttack",
    "SpywareSyncAttack",
    "ReplayAttack",
    "BruteForceAttack",
]
