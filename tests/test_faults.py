"""Unit tests for the repro.faults subsystem (plan, link, breaker, injectors)."""

import numpy as np
import pytest

from repro.core import FiatApp, HumanValidationService
from repro.crypto import pair
from repro.faults import (
    BreakerState,
    CircuitBreaker,
    ComponentOutage,
    FaultPlan,
    FaultyLink,
    FlakyClassifier,
    FlakyValidationService,
    OutageWindow,
)
from repro.quic import LAN_PATH, Transport
from repro.sensors import HumannessValidator
from repro.testbed import Phone


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corruption_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(extra_delay_ms=-1.0)

    def test_outage_window_validated(self):
        with pytest.raises(ValueError):
            OutageWindow("validation", 10.0, 5.0)

    def test_is_down_half_open_interval(self):
        plan = FaultPlan(outages=(OutageWindow("validation", 10.0, 20.0),))
        assert not plan.is_down("validation", 9.999)
        assert plan.is_down("validation", 10.0)
        assert plan.is_down("validation", 19.999)
        assert not plan.is_down("validation", 20.0)
        assert not plan.is_down("classifier:SP10", 15.0)

    def test_streams_independent_and_deterministic(self):
        plan = FaultPlan(seed=42)
        a1 = plan.stream("link").random(8)
        a2 = plan.stream("link").random(8)
        b = plan.stream("sensor").random(8)
        assert np.allclose(a1, a2)
        assert not np.allclose(a1, b)

    def test_outages_accepts_list(self):
        plan = FaultPlan(outages=[OutageWindow("sensor", 0.0, 1.0)])
        assert isinstance(plan.outages, tuple)
        assert plan.outages_for("sensor") == plan.outages


class TestFaultyLink:
    def test_lossless_link_is_transparent(self):
        link = FaultyLink(FaultPlan(seed=0))
        deliveries = link.transmit(b"proof", sent_at=10.0, latency_ms=25.0)
        assert len(deliveries) == 1
        assert deliveries[0].wire == b"proof"
        assert deliveries[0].arrive_at == pytest.approx(10.025)
        assert not link.ack_lost()

    def test_full_loss(self):
        link = FaultyLink(FaultPlan(seed=0, loss_rate=1.0))
        assert link.transmit(b"proof", 0.0) == []
        assert link.n_lost == 1

    def test_loss_rate_statistics(self):
        link = FaultyLink(FaultPlan(seed=3, loss_rate=0.3))
        lost = sum(not link.transmit(b"m", float(i)) for i in range(2000))
        assert 0.25 < lost / 2000 < 0.35

    def test_duplicates_and_ordering(self):
        link = FaultyLink(
            FaultPlan(seed=1, duplicate_rate=1.0, delay_jitter_ms=50.0)
        )
        deliveries = link.transmit(b"proof", 0.0, latency_ms=10.0)
        assert len(deliveries) == 2
        assert deliveries[0].arrive_at <= deliveries[1].arrive_at
        assert any(d.duplicate for d in deliveries)

    def test_corruption_flips_exactly_one_bit(self):
        link = FaultyLink(FaultPlan(seed=2, corruption_rate=1.0))
        (delivery,) = link.transmit(b"proof-bytes", 0.0)
        assert delivery.corrupted
        diff = [
            (a, b) for a, b in zip(b"proof-bytes", delivery.wire) if a != b
        ]
        assert len(diff) == 1
        assert diff[0][0] ^ diff[0][1] == 0x01

    def test_clock_skew(self):
        link = FaultyLink(FaultPlan(clock_skew_s=45.0))
        assert link.receiver_clock(10.0) == pytest.approx(55.0)

    def test_deterministic_schedule(self):
        plan = FaultPlan(seed=9, loss_rate=0.4, duplicate_rate=0.2, corruption_rate=0.1)
        runs = []
        for _ in range(2):
            link = FaultyLink(plan)
            runs.append(
                [
                    tuple((d.arrive_at, d.wire) for d in link.transmit(b"x", float(i), 20.0))
                    for i in range(50)
                ]
            )
        assert runs[0] == runs[1]


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker("c", failure_threshold=3, recovery_timeout_s=30.0)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(1.0)
        assert breaker.record_failure(2.0)  # newly opened
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow_request(10.0)
        assert breaker.n_opens == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("c", failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        assert not breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED

    def test_probe_after_recovery_timeout(self):
        breaker = CircuitBreaker("c", failure_threshold=1, recovery_timeout_s=30.0)
        breaker.record_failure(0.0)
        assert not breaker.allow_request(29.9)
        assert breaker.allow_request(30.0)  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.record_success(30.0)  # recovery
        assert breaker.state is BreakerState.CLOSED
        assert breaker.n_recoveries == 1

    def test_failed_probe_reopens_and_restarts_timer(self):
        breaker = CircuitBreaker("c", failure_threshold=1, recovery_timeout_s=30.0)
        breaker.record_failure(0.0)
        assert breaker.allow_request(31.0)
        assert breaker.record_failure(31.0)  # probe failed: re-open
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow_request(60.0)  # timer restarted at 31
        assert breaker.allow_request(61.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_timeout_s=-1.0)


class TestCircuitBreakerTimingEdges:
    """Recovery-probe edges: exact boundaries, half-open failures, flaps."""

    def test_probe_exactly_at_recovery_timeout(self):
        breaker = CircuitBreaker("c", failure_threshold=1, recovery_timeout_s=30.0)
        breaker.record_failure(10.0)
        # elapsed == timeout is enough: the comparison is inclusive
        assert not breaker.allow_request(10.0 + 30.0 - 1e-9)
        assert breaker.allow_request(40.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_boundary_tracks_restarted_timer(self):
        breaker = CircuitBreaker("c", failure_threshold=1, recovery_timeout_s=30.0)
        breaker.record_failure(0.0)
        assert breaker.allow_request(30.0)
        breaker.record_failure(30.0)  # failed probe: timer restarts at 30
        assert not breaker.allow_request(59.999)
        assert breaker.allow_request(60.0)  # exactly one timeout after re-open

    def test_failure_during_half_open_reopens_without_threshold(self):
        breaker = CircuitBreaker("c", failure_threshold=3, recovery_timeout_s=30.0)
        for t in (0.0, 1.0, 2.0):
            breaker.record_failure(t)
        assert breaker.allow_request(32.0)
        # ONE failure re-opens from HALF_OPEN, not failure_threshold
        assert breaker.record_failure(32.0)
        assert breaker.state is BreakerState.OPEN

    def test_half_open_requests_are_all_probes(self):
        breaker = CircuitBreaker("c", failure_threshold=1, recovery_timeout_s=30.0)
        breaker.record_failure(0.0)
        assert breaker.allow_request(30.0)
        assert breaker.allow_request(30.5)  # still HALF_OPEN: allowed, a probe
        assert breaker.n_probes == 2
        assert breaker.n_rejected == 0

    def test_repeated_half_open_flaps_count_each_open(self):
        breaker = CircuitBreaker("c", failure_threshold=1, recovery_timeout_s=30.0)
        t = 0.0
        assert breaker.record_failure(t)
        for flap in range(4):
            t += 30.0
            assert breaker.allow_request(t)
            assert breaker.record_failure(t)  # each flap is a fresh open
        assert breaker.n_opens == 5
        assert breaker.n_probes == 4
        assert breaker.n_recoveries == 0
        # the flapping never shortened the timer
        assert not breaker.allow_request(t + 29.9)

    def test_recovery_after_flaps_requires_full_threshold_again(self):
        breaker = CircuitBreaker("c", failure_threshold=2, recovery_timeout_s=30.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.allow_request(31.0)
        breaker.record_failure(31.0)  # flap
        assert breaker.allow_request(61.0)
        assert breaker.record_success(61.0)  # probe succeeds: recovery
        assert breaker.state is BreakerState.CLOSED
        assert breaker.n_recoveries == 1
        # consecutive-failure count was reset by the recovery
        assert not breaker.record_failure(62.0)
        assert breaker.state is BreakerState.CLOSED

    def test_rejected_requests_are_counted_while_open(self):
        breaker = CircuitBreaker("c", failure_threshold=1, recovery_timeout_s=30.0)
        breaker.record_failure(0.0)
        for t in (1.0, 2.0, 3.0):
            assert not breaker.allow_request(t)
        assert breaker.n_rejected == 3

    def test_zero_recovery_timeout_probes_immediately(self):
        breaker = CircuitBreaker("c", failure_threshold=1, recovery_timeout_s=0.0)
        breaker.record_failure(5.0)
        assert breaker.allow_request(5.0)  # elapsed 0 >= timeout 0
        assert breaker.state is BreakerState.HALF_OPEN


class _RuleStub:
    """Minimal EventClassifier stand-in for injector tests."""

    device = "SP10"
    uses_rules = True

    def is_manual(self, packets):
        return True

    def classify_packets(self, packets):
        return "manual"


class _FakePacket:
    def __init__(self, timestamp):
        self.timestamp = timestamp


class TestInjectors:
    def test_flaky_classifier_raises_only_in_window(self):
        plan = FaultPlan(outages=(OutageWindow("classifier:SP10", 100.0, 200.0),))
        flaky = FlakyClassifier(_RuleStub(), plan)
        assert flaky.uses_rules
        assert flaky.is_manual([_FakePacket(50.0)])
        with pytest.raises(ComponentOutage):
            flaky.is_manual([_FakePacket(150.0)])
        with pytest.raises(ComponentOutage):
            flaky.classify_packets([_FakePacket(150.0)])
        assert flaky.is_manual([_FakePacket(250.0)])
        assert flaky.n_faults == 2

    def test_flaky_validation_service(self):
        phone_ks, proxy_ks = pair("phone", "proxy")
        service = HumanValidationService(
            proxy_ks, validator=HumannessValidator(n_train_per_class=60, seed=0).fit()
        )
        plan = FaultPlan(outages=(OutageWindow("validation", 100.0, 200.0),))
        flaky = FlakyValidationService(service, plan)

        app = FiatApp(
            keystore=phone_ks,
            key_alias="fiat-pairing",
            device_id="phone-1",
            path=LAN_PATH,
            transport=Transport.QUIC_0RTT,
            seed=0,
        )
        interaction = Phone(seed=0).interact("SP10", 50.0, human=True, intensity=1.2)
        attempt = app.authenticate(interaction, now=50.0)
        assert flaky.ingest(attempt.wire, now=50.1) is not None
        with pytest.raises(ComponentOutage):
            flaky.ingest(attempt.wire, now=150.0)
        with pytest.raises(ComponentOutage):
            flaky.has_recent_human(interaction.app_package, now=150.0)
        # attribute passthrough to the wrapped service
        assert flaky.n_rejected_channel == service.n_rejected_channel
        assert flaky.has_recent_human(interaction.app_package, now=60.0)
