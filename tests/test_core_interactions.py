"""Unit tests for the §7 device-interaction DAG extension."""

import numpy as np
import pytest

from repro.core import (
    CycleError,
    DeviceInteractionGraph,
    FiatConfig,
    FiatProxy,
    HumanValidationService,
    InteractionRule,
    train_event_classifier,
)
from repro.crypto import pair
from repro.net import Direction, Packet, TrafficClass
from repro.sensors import HumannessValidator
from repro.testbed import profile_for


class TestGraphConstruction:
    def test_add_and_query(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("Alexa", "SmartLight")
        assert graph.allows("Alexa", "SmartLight")
        assert not graph.allows("SmartLight", "Alexa")
        assert len(graph) == 1

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError):
            InteractionRule(controller="a", target="a")

    def test_cycle_rejected(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        with pytest.raises(CycleError):
            graph.add_edge("c", "a")

    def test_two_cycle_rejected(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("a", "b")
        with pytest.raises(CycleError):
            graph.add_edge("b", "a")

    def test_remove_edge(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("a", "b")
        assert graph.remove_edge("a", "b")
        assert not graph.allows("a", "b")
        assert not graph.remove_edge("a", "b")

    def test_removed_edge_unblocks_reverse(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("a", "b")
        graph.remove_edge("a", "b")
        graph.add_edge("b", "a")  # no longer a cycle
        assert graph.allows("b", "a")


class TestGraphQueries:
    def test_reachable_transitive(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("hub", "light")
        graph.add_edge("alexa", "hub")
        assert graph.reachable("alexa") == {"hub", "light"}
        assert graph.reachable("light") == set()

    def test_transitive_does_not_authorize_directly(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("alexa", "hub")
        graph.add_edge("hub", "light")
        assert not graph.allows("alexa", "light")  # every hop is explicit

    def test_service_restriction(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("alexa", "light", services=["api"])
        assert graph.allows("alexa", "light", service="api")
        assert not graph.allows("alexa", "light", service="stream")
        assert graph.allows("alexa", "light")  # unspecified service passes

    def test_topological_order(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("a", "c")
        order = graph.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_allows_packet(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("EchoDot4", "SP10")
        device_ips = {"EchoDot4": "192.168.1.11", "SP10": "192.168.1.12"}
        packet = Packet(
            timestamp=0.0,
            size=235,
            src_ip="192.168.1.11",
            dst_ip="192.168.1.12",
            src_port=40000,
            dst_port=443,
            protocol="tcp",
            direction=Direction.INBOUND,
            device="SP10",
        )
        assert graph.allows_packet(packet, device_ips)
        assert not graph.allows_packet(packet, {"SP10": "192.168.1.12"})


class TestProxyIntegration:
    def _proxy(self, graph, device_ips):
        _, proxy_ks = pair("phone", "proxy")
        return FiatProxy(
            config=FiatConfig(bootstrap_s=0.0),
            dns=None,
            classifiers={"SP10": train_event_classifier(profile_for("SP10"))},
            validation=HumanValidationService(
                proxy_ks, validator=HumannessValidator(n_train_per_class=60, seed=0).fit()
            ),
            app_for_device={},
            interactions=graph,
            device_ips=device_ips,
        )

    def _alexa_command(self):
        # A manual-shaped SP10 command arriving from the EchoDot4's LAN IP.
        return [
            Packet(
                timestamp=10.0 + 0.1 * i,
                size=235 if i == 0 else 180,
                src_ip="192.168.1.11",
                dst_ip="192.168.1.12",
                src_port=40001,
                dst_port=443,
                protocol="tcp",
                direction=Direction.INBOUND,
                device="SP10",
                traffic_class=TrafficClass.MANUAL,
            )
            for i in range(2)
        ]

    def test_device_command_blocked_without_rule(self):
        proxy = self._proxy(DeviceInteractionGraph(), {"EchoDot4": "192.168.1.11"})
        allowed = [proxy.process(p) for p in self._alexa_command()]
        assert not any(allowed)

    def test_device_command_allowed_with_rule(self):
        graph = DeviceInteractionGraph()
        graph.add_edge("EchoDot4", "SP10")
        proxy = self._proxy(graph, {"EchoDot4": "192.168.1.11"})
        allowed = [proxy.process(p) for p in self._alexa_command()]
        assert all(allowed)
        proxy.flush()
        decision = proxy.decisions[-1]
        assert decision.predicted_manual and not decision.blocked
