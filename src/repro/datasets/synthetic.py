"""Generic synthetic-device corpus machinery for the public-dataset analyses.

The §2 measurement study runs over *hundreds* of devices from public
datasets (YourThings: 65 devices / 10 days; Mon(IoT)r: 104 devices).
Those captures are not redistributable and are far too large to replay
offline, so this module generates statistically equivalent corpora: each
synthetic device owns a random set of periodic flows (the predictable
part) plus a device-specific rate of aperiodic noise traffic (the
unpredictable part).  Per-device parameters are drawn from distributions
calibrated so the resulting predictability CDFs match the published
curves (Fig 1b) and the max-interval CDF matches Fig 1c (80-90 % of
predictable flows recur within 5 minutes, max 10 minutes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..net.dns import DnsTable
from ..net.packet import TCP_ACK, TCP_PSH, TLS_1_2, TLS_NONE, Direction, Packet, TrafficClass
from ..net.trace import Trace

__all__ = ["SyntheticDeviceSpec", "generate_device_trace", "generate_corpus"]


@dataclass
class SyntheticDeviceSpec:
    """Parameters of one synthetic dataset device."""

    name: str
    n_flows: int
    #: seconds; flow periods are drawn log-uniformly from this range
    period_range: Tuple[float, float]
    #: target fraction of the device's traffic that is aperiodic noise
    unpredictable_fraction: float
    #: how often the device re-opens connections (hurts Classic buckets)
    reconnect_s: float
    #: remote endpoints (domain, ip-pool) used by the flows
    n_endpoints: int = 4

    @classmethod
    def random(
        cls,
        name: str,
        rng: np.random.Generator,
        noise_scale: float = 1.0,
        max_period_s: float = 600.0,
    ) -> "SyntheticDeviceSpec":
        """Draw one device's parameters.

        ``noise_scale`` shifts the unpredictable-traffic-share
        distribution: idle corpora use a low scale, active corpora a
        high one.  The share is Beta-distributed, giving the long tail
        of Fig 1b's CDF (most devices > 80 % predictable, a few far
        below).
        """
        fraction = float(np.clip(rng.beta(1.6, 10.0) * noise_scale, 0.0, 0.9))
        return cls(
            name=name,
            n_flows=int(rng.integers(3, 13)),
            period_range=(5.0, float(rng.uniform(60.0, max_period_s))),
            unpredictable_fraction=fraction,
            reconnect_s=float(rng.uniform(60.0, 900.0)),
        )


def _endpoint_addresses(
    spec: SyntheticDeviceSpec, rng: np.random.Generator, dns: DnsTable
) -> List[Tuple[str, Tuple[str, ...], int]]:
    """Allocate (domain, ip pool, port) per endpoint and register DNS."""
    endpoints = []
    for e in range(spec.n_endpoints):
        domain = f"svc{e}.{spec.name.lower()}.example.com"
        pool = tuple(
            f"{int(rng.integers(11, 200))}.{int(rng.integers(1, 255))}."
            f"{int(rng.integers(1, 255))}.{int(rng.integers(1, 255))}"
            for _ in range(8)
        )
        for ip in pool:
            dns.add_record(ip, domain)
        port = int(rng.choice([443, 8883, 123, 5228]))
        endpoints.append((domain, pool, port))
    return endpoints


def generate_device_trace(
    spec: SyntheticDeviceSpec,
    duration_s: float,
    dns: DnsTable,
    device_ip: str,
    rng: np.random.Generator,
) -> List[Packet]:
    """Render one synthetic device's capture."""
    endpoints = _endpoint_addresses(spec, rng, dns)
    packets: List[Packet] = []

    # Periodic flows: fixed size + period to a fixed endpoint; the
    # connection (ephemeral port + pool IP) rotates every reconnect_s,
    # which breaks Classic buckets but not PortLess ones.
    periods = [
        float(np.exp(rng.uniform(*np.log(spec.period_range))))
        for _ in range(spec.n_flows)
    ]
    for period in periods:
        domain, pool, port = endpoints[int(rng.integers(0, len(endpoints)))]
        size = int(rng.integers(60, 700))
        outbound = bool(rng.random() < 0.6)
        protocol = "tcp" if rng.random() < 0.8 else "udp"
        local_port = int(rng.integers(32768, 61000))
        remote_ip = pool[int(rng.integers(0, len(pool)))]
        next_reconnect = spec.reconnect_s
        t = float(rng.uniform(0.0, period))
        while t < duration_s:
            if t >= next_reconnect:
                local_port = int(rng.integers(32768, 61000))
                remote_ip = pool[int(rng.integers(0, len(pool)))]
                next_reconnect += spec.reconnect_s
            direction = Direction.OUTBOUND if outbound else Direction.INBOUND
            src_ip, dst_ip = (device_ip, remote_ip) if outbound else (remote_ip, device_ip)
            src_port, dst_port = (local_port, port) if outbound else (port, local_port)
            packets.append(
                Packet(
                    timestamp=t + float(rng.uniform(-0.04, 0.04)),
                    size=size,
                    src_ip=src_ip,
                    dst_ip=dst_ip,
                    src_port=src_port,
                    dst_port=dst_port,
                    protocol=protocol,
                    direction=direction,
                    device=spec.name,
                    tcp_flags=TCP_ACK if protocol == "tcp" else 0,
                    tls_version=TLS_1_2 if protocol == "tcp" else TLS_NONE,
                    traffic_class=TrafficClass.CONTROL,
                )
            )
            t += period

    # Noise traffic: Poisson arrivals, unique sizes, random endpoints.
    # The rate is derived from the periodic packet rate so the device's
    # unpredictable traffic share matches its spec.
    periodic_rate = sum(1.0 / p for p in periods)
    fraction = spec.unpredictable_fraction
    if fraction > 0:
        rate = periodic_rate * fraction / (1.0 - fraction)
        t = float(rng.exponential(1.0 / rate))
        while t < duration_s:
            domain, pool, port = endpoints[int(rng.integers(0, len(endpoints)))]
            remote_ip = pool[int(rng.integers(0, len(pool)))]
            outbound = bool(rng.random() < 0.5)
            local_port = int(rng.integers(32768, 61000))
            src_ip, dst_ip = (device_ip, remote_ip) if outbound else (remote_ip, device_ip)
            src_port, dst_port = (local_port, port) if outbound else (port, local_port)
            packets.append(
                Packet(
                    timestamp=t,
                    size=int(rng.integers(60, 1400)),
                    src_ip=src_ip,
                    dst_ip=dst_ip,
                    src_port=src_port,
                    dst_port=dst_port,
                    protocol="tcp",
                    direction=Direction.OUTBOUND if outbound else Direction.INBOUND,
                    device=spec.name,
                    tcp_flags=TCP_PSH | TCP_ACK,
                    tls_version=TLS_1_2,
                    traffic_class=TrafficClass.MANUAL,
                )
            )
            t += float(rng.exponential(1.0 / rate))

    return packets


def generate_corpus(
    n_devices: int,
    duration_s: float,
    seed: int = 0,
    noise_scale: float = 1.0,
    name: str = "corpus",
    max_period_s: float = 600.0,
) -> Trace:
    """Generate a multi-device corpus as a single labelled trace."""
    rng = np.random.default_rng(seed)
    dns = DnsTable()
    packets: List[Packet] = []
    for d in range(n_devices):
        spec = SyntheticDeviceSpec.random(
            f"{name}-dev{d:03d}", rng, noise_scale=noise_scale, max_period_s=max_period_s
        )
        device_ip = f"10.0.{d // 250}.{d % 250 + 2}"
        packets.extend(generate_device_trace(spec, duration_s, dns, device_ip, rng))
    return Trace(packets, dns=dns, name=name)
