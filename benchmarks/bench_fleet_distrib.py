"""Distributed fleet: homes/sec vs machine count, and the cost of dying.

The ROADMAP's multi-machine axis: `repro.fleet.distrib` partitions a
fleet into contiguous home-ranges, runs each on a machine subprocess
under a lease, and folds an exact spec-order merge.  This bench sweeps
the machine count over one generated fleet and reports homes/sec, then
SIGKILLs one machine mid-run and reports the recovery overhead —
asserting after every variant that the report bytes are identical to
the single-machine run (fault tolerance must never buy liveness with
determinism).

Headline metrics (tracked in ``benchmarks/baselines/history.jsonl``):
``homes_per_sec`` (best distributed rate) and
``recovery_overhead_pct`` (kill-one-machine wall-clock tax over a
clean distributed run at the same machine count).

Run with ``pytest -s`` to see the table.
"""

import json
import tempfile
import time

from repro.fleet import DistribCoordinator, FleetRunner, generate_fleet
from repro.faults import MachineFault

from benchmarks._helpers import bench_out_path, print_table

#: Machine counts swept (1 is the in-process serial reference).
MACHINE_COUNTS = [1, 2, 4]

N_HOMES = 12


def _fleet():
    return generate_fleet(
        N_HOMES, seed=17, name="bench-distrib",
        n_manual=2, n_non_manual=4, n_attacks=2, n_training_events=60,
    )


def _distrib(spec, tmp, tag, machines, faults=()):
    coordinator = DistribCoordinator(
        spec,
        state_dir=f"{tmp}/{tag}",
        machines=machines,
        machine_faults=faults,
    )
    t0 = time.perf_counter()
    report = coordinator.run()
    return report, time.perf_counter() - t0, coordinator.stats


def test_fleet_distrib_scaling_and_recovery():
    """Homes/sec vs ``--machines``, plus the kill-one-machine tax."""
    spec = _fleet()
    rows = []
    timings = {}

    t0 = time.perf_counter()
    ref = FleetRunner(spec, jobs=1).run()
    timings[1] = time.perf_counter() - t0
    assert ref.ok, ref.failed_homes
    ref_json = ref.to_json()
    rows.append(("serial:1", f"{timings[1]:.2f}s",
                 f"{N_HOMES / timings[1]:.2f}", "1.00x", "-"))

    with tempfile.TemporaryDirectory() as tmp:
        for machines in MACHINE_COUNTS[1:]:
            report, elapsed, stats = _distrib(
                spec, tmp, f"m{machines}", machines
            )
            assert report.to_json() == ref_json, (
                f"machines={machines} diverged from serial"
            )
            timings[machines] = elapsed
            rows.append(
                (
                    f"distrib:{machines}",
                    f"{elapsed:.2f}s",
                    f"{N_HOMES / elapsed:.2f}",
                    f"{timings[1] / elapsed:.2f}x",
                    f"{stats['leases_granted']} leases",
                )
            )

        # Recovery: SIGKILL the machine holding range 0 after one home.
        report, faulted_s, stats = _distrib(
            spec, tmp, "killed", 2,
            faults=[MachineFault("kill", 0, after_homes=1)],
        )
        assert report.to_json() == ref_json, "kill-recovery run diverged"
        assert stats["re_leases"] >= 1, "the kill was never noticed"
        clean_s = timings[2]
        recovery_overhead_pct = 100.0 * (faulted_s - clean_s) / clean_s
        rows.append(
            (
                "distrib:2+kill",
                f"{faulted_s:.2f}s",
                f"{N_HOMES / faulted_s:.2f}",
                f"{timings[1] / faulted_s:.2f}x",
                f"+{recovery_overhead_pct:.0f}% recovery",
            )
        )

    print_table(
        "Distributed fleet (homes/sec vs machines)",
        ["mode", "elapsed", "homes/sec", "speedup", "notes"],
        rows,
    )

    # The dead machine's range re-runs once: the tax is bounded by
    # roughly one extra range plus a machine restart, never a multiple
    # of the whole run (generous cap to absorb shared-runner noise).
    assert recovery_overhead_pct < 400.0, (
        f"kill recovery cost {recovery_overhead_pct:.0f}% of a clean run"
    )

    best = max(N_HOMES / timings[m] for m in MACHINE_COUNTS[1:])
    headline = {
        "n_homes": N_HOMES,
        "homes_per_sec": best,
        "serial_homes_per_sec": N_HOMES / timings[1],
        "homes_per_sec_by_machines": {
            str(m): N_HOMES / t for m, t in timings.items()
        },
        "recovery_overhead_pct": recovery_overhead_pct,
        "deterministic": True,
    }
    with open(bench_out_path("BENCH_fleet_distrib.json"), "w", encoding="utf-8") as fh:
        json.dump({"bench": "fleet_distrib", "headline": headline}, fh, indent=2)
