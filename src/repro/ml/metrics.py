"""Classification metrics used throughout the paper's evaluation.

* **balanced accuracy** (Table 2) — macro-average of per-class recall,
  used to neutralise the skewed control/automated/manual class mix;
* **precision / recall / F1** (Tables 3, 5, 6) — per class or averaged;
* **confusion matrix** — underlying all of the above.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "confusion_matrix",
    "accuracy_score",
    "balanced_accuracy_score",
    "precision_recall_f1",
    "f1_score",
    "classification_report",
]


def _align(y_true: Any, y_pred: Any) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true shape {y_true.shape} != y_pred shape {y_pred.shape}"
        )
    labels = np.unique(np.concatenate([y_true, y_pred]))
    return y_true, y_pred, labels


def confusion_matrix(
    y_true: Any, y_pred: Any, labels: Optional[Sequence[Any]] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Confusion matrix ``C[i, j]`` = #samples of class i predicted as j.

    Returns ``(matrix, labels)`` where ``labels`` gives the row/column
    order (sorted union of true and predicted labels unless provided).
    """
    y_true, y_pred, inferred = _align(y_true, y_pred)
    label_array = np.asarray(labels) if labels is not None else inferred
    index = {label: i for i, label in enumerate(label_array.tolist())}
    matrix = np.zeros((len(label_array), len(label_array)), dtype=int)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t in index and p in index:
            matrix[index[t], index[p]] += 1
    return matrix, label_array


def accuracy_score(y_true: Any, y_pred: Any) -> float:
    """Fraction of exactly correct predictions."""
    y_true, y_pred, _ = _align(y_true, y_pred)
    if len(y_true) == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def balanced_accuracy_score(y_true: Any, y_pred: Any) -> float:
    """Macro-average of per-class recall (paper Table 2's metric).

    Classes absent from ``y_true`` are ignored.
    """
    matrix, labels = confusion_matrix(y_true, y_pred)
    recalls = []
    for i in range(len(labels)):
        support = matrix[i].sum()
        if support > 0:
            recalls.append(matrix[i, i] / support)
    return float(np.mean(recalls)) if recalls else 0.0


def precision_recall_f1(
    y_true: Any,
    y_pred: Any,
    positive: Any,
) -> Tuple[float, float, float]:
    """Precision, recall and F1 for one positive class.

    Empty denominators yield 0.0 (no predictions of the class means zero
    precision; no true members means zero recall).
    """
    y_true, y_pred, _ = _align(y_true, y_pred)
    tp = int(np.sum((y_true == positive) & (y_pred == positive)))
    fp = int(np.sum((y_true != positive) & (y_pred == positive)))
    fn = int(np.sum((y_true == positive) & (y_pred != positive)))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def f1_score(y_true: Any, y_pred: Any, positive: Any) -> float:
    """F1 for one positive class (harmonic mean of precision and recall)."""
    return precision_recall_f1(y_true, y_pred, positive)[2]


def classification_report(y_true: Any, y_pred: Any) -> Dict[Any, Dict[str, float]]:
    """Per-class precision/recall/F1/support, plus macro averages.

    Returns a mapping ``label -> {"precision", "recall", "f1", "support"}``
    with an extra ``"macro avg"`` entry.
    """
    y_true, y_pred, labels = _align(y_true, y_pred)
    report: Dict[Any, Dict[str, float]] = {}
    macro = np.zeros(3)
    counted = 0
    for label in labels.tolist():
        precision, recall, f1 = precision_recall_f1(y_true, y_pred, label)
        support = int(np.sum(y_true == label))
        report[label] = {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "support": float(support),
        }
        if support > 0:
            macro += (precision, recall, f1)
            counted += 1
    if counted:
        macro /= counted
    report["macro avg"] = {
        "precision": float(macro[0]),
        "recall": float(macro[1]),
        "f1": float(macro[2]),
        "support": float(len(y_true)),
    }
    return report
