"""Multi-layer perceptron classifier (NumPy backprop).

The paper's "Neural Network" entry in Table 2 is an MLP with hidden size
128, swept from 1 to 10 hidden layers (8 best on its data), balanced
accuracy 0.786.  This implementation uses ReLU activations, a softmax
cross-entropy head and Adam, trained full-batch for determinism.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from .base import Classifier, check_X, check_Xy

__all__ = ["MLPClassifier"]


class MLPClassifier(Classifier):
    """Feed-forward neural network classifier.

    Parameters
    ----------
    hidden_layer_sizes:
        Width of each hidden layer (paper default: ``(128,) * 8``).
    learning_rate:
        Adam step size.
    n_epochs:
        Full-batch training epochs.
    l2:
        L2 weight decay coefficient.
    seed:
        Weight initialisation seed.
    """

    def __init__(
        self,
        hidden_layer_sizes: Sequence[int] = (128,),
        learning_rate: float = 1e-2,
        n_epochs: int = 200,
        l2: float = 1e-4,
        seed: Optional[int] = 0,
    ) -> None:
        if any(size < 1 for size in hidden_layer_sizes):
            raise ValueError("hidden layer sizes must be >= 1")
        if n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        self.hidden_layer_sizes = tuple(hidden_layer_sizes)
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.l2 = l2
        self.seed = seed
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []

    # -- internals ------------------------------------------------------------------

    def _init_params(self, n_in: int, n_out: int, rng: np.random.Generator) -> None:
        sizes = [n_in, *self.hidden_layer_sizes, n_out]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He initialisation for ReLU
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray]:
        activations = [X]
        h = X
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            z = h @ W + b
            if i < len(self._weights) - 1:
                h = np.maximum(z, 0.0)
                activations.append(h)
            else:
                z -= z.max(axis=1, keepdims=True)
                expz = np.exp(z)
                probs = expz / expz.sum(axis=1, keepdims=True)
                return activations, probs
        raise AssertionError("unreachable")  # pragma: no cover

    def fit(self, X: Any, y: Any) -> "MLPClassifier":
        """Train with full-batch Adam on softmax cross-entropy."""
        X, y = check_Xy(X, y)
        y_idx = self._store_classes(y)
        n_classes = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        self._init_params(X.shape[1], n_classes, rng)

        onehot = np.zeros((len(y_idx), n_classes))
        onehot[np.arange(len(y_idx)), y_idx] = 1.0

        # Adam state
        m_w = [np.zeros_like(W) for W in self._weights]
        v_w = [np.zeros_like(W) for W in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        n = X.shape[0]
        for epoch in range(1, self.n_epochs + 1):
            activations, probs = self._forward(X)
            delta = (probs - onehot) / n
            grads_w: List[np.ndarray] = [None] * len(self._weights)  # type: ignore
            grads_b: List[np.ndarray] = [None] * len(self._biases)  # type: ignore
            for layer in range(len(self._weights) - 1, -1, -1):
                grads_w[layer] = activations[layer].T @ delta + self.l2 * self._weights[layer]
                grads_b[layer] = delta.sum(axis=0)
                if layer > 0:
                    delta = (delta @ self._weights[layer].T) * (activations[layer] > 0)
            for layer in range(len(self._weights)):
                for params, grads, m, v in (
                    (self._weights, grads_w, m_w, v_w),
                    (self._biases, grads_b, m_b, v_b),
                ):
                    m[layer] = beta1 * m[layer] + (1 - beta1) * grads[layer]
                    v[layer] = beta2 * v[layer] + (1 - beta2) * grads[layer] ** 2
                    m_hat = m[layer] / (1 - beta1**epoch)
                    v_hat = v[layer] / (1 - beta2**epoch)
                    params[layer] = params[layer] - self.learning_rate * m_hat / (
                        np.sqrt(v_hat) + eps
                    )
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        """Softmax output probabilities."""
        if not self._weights:
            raise RuntimeError("classifier must be fitted before predict")
        X = check_X(X)
        _, probs = self._forward(X)
        return probs
