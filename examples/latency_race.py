"""The latency race: FIAT's proof vs the IoT command (§6, Table 7).

For each measured operation, samples the command's time-to-first-packet
and FIAT's time-to-human-validation (QUIC 0-RTT) on LAN and mobile
paths, and reports who wins the race and by how much.  Also compares
the three transports for the authentication channel.

Run:  python examples/latency_race.py
"""

import numpy as np

from repro.core import (
    LAN_SCENARIO,
    MOBILE_SCENARIO,
    TABLE7_OPERATIONS,
    time_to_first_packet,
    validation_breakdown,
)
from repro.quic import Transport

N = 200


def main() -> None:
    rng = np.random.default_rng(0)

    for scenario in (LAN_SCENARIO, MOBILE_SCENARIO):
        print(f"\n--- {scenario.name.upper()} scenario ---")
        validations = np.array(
            [
                validation_breakdown(scenario, Transport.QUIC_0RTT, rng)["time_to_validation"]
                for _ in range(N)
            ]
        )
        for op in TABLE7_OPERATIONS:
            commands = np.array(
                [time_to_first_packet(op, scenario, rng) for _ in range(N)]
            )
            wins = float(np.mean(validations[: len(commands)] < commands))
            margin = 1.0 - validations.mean() / commands.mean()
            print(
                f"  {op.device:9s} {op.operation:14s} command {commands.mean():6.0f} ms   "
                f"proof {validations.mean():5.0f} ms   FIAT wins {100 * wins:5.1f}% "
                f"(faster by {100 * margin:4.1f}%)"
            )

        print("  auth-channel transport comparison:")
        for transport in Transport:
            samples = [
                validation_breakdown(scenario, transport, rng)["transport"] for _ in range(N)
            ]
            print(f"    {transport.value:10s} {np.mean(samples):7.1f} ms")


if __name__ == "__main__":
    main()
